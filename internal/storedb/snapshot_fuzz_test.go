package storedb

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// pristineSnapshot encodes a multi-block v3 snapshot and returns its
// bytes. Values are sized so the stream spans several bucket blocks
// when blockTarget-sized, but here entries are small and the interest
// is structural: header block plus at least one bucket block.
func pristineSnapshot(tb testing.TB, entries int) []byte {
	tb.Helper()
	var tr tree
	for i := 0; i < entries; i++ {
		k := []byte(fmt.Sprintf("b\x00key-%04d", i))
		v := bytes.Repeat([]byte{byte(i)}, i%53)
		tr = tr.Put(k, v)
	}
	var buf bytes.Buffer
	if err := encodeSnapshot(&buf, tr, uint64(entries), 0x1234_5678_9abc_def0); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// mutateSnapshot applies one mutation class to a copy of data. The
// classes mirror FuzzWALTail's: truncation, overwrite, splice.
func mutateSnapshot(data []byte, mode, pos int, chunk []byte) []byte {
	mutated := append([]byte(nil), data...)
	if pos < 0 {
		pos = -pos
	}
	switch mode % 3 {
	case 0: // truncate at pos
		if pos > len(mutated) {
			pos = len(mutated)
		}
		mutated = mutated[:pos]
	case 1: // overwrite bytes at pos with chunk
		if pos >= len(mutated) {
			pos = pos % (len(mutated) + 1)
		}
		for i, c := range chunk {
			if pos+i >= len(mutated) {
				break
			}
			mutated[pos+i] = c
		}
	case 2: // splice chunk in at pos, shifting the tail
		if pos > len(mutated) {
			pos = pos % (len(mutated) + 1)
		}
		rest := append([]byte(nil), mutated[pos:]...)
		mutated = append(append(mutated[:pos], chunk...), rest...)
	}
	return mutated
}

// FuzzSnapshot mutates a pristine v3 snapshot stream — truncations,
// byte flips in every region (magic, version, block framing, payloads),
// splices — and asserts the decoder's contract for every mutation:
// it never panics, never silently accepts damage to checksummed bytes,
// reports every rejection as ErrCorrupt, and agrees with the scrub
// verifier on whether the bytes are intact. The file-sized decode and
// the unbounded stream decode (a replication bootstrap body) must also
// agree.
func FuzzSnapshot(f *testing.F) {
	data := pristineSnapshot(f, 40)

	// Deterministic mutator corpus: one exemplar of each damage class
	// the scrub matrix and the repair path care about.
	f.Add(0, 0, []byte{})                                  // empty file
	f.Add(0, len(data)/2, []byte{})                        // truncated mid-block
	f.Add(0, snapHeaderPayloadOff+snapshotHeaderLen, []byte{}) // header only, no bucket blocks
	f.Add(1, 0, []byte{'X'})                               // damaged magic
	f.Add(1, 9, []byte{0xff})                              // damaged version field
	f.Add(1, 12, []byte{0xff, 0xff, 0xff, 0xff})           // forged header-block length
	f.Add(1, snapHeaderPayloadOff+1, []byte{0x01})         // bit flip in header payload
	f.Add(1, snapHeaderPayloadOff+17, []byte{0xff})        // forged entry count
	f.Add(1, snapFirstBlockOff-8, []byte{0x7f, 0xff})      // forged bucket-block length
	f.Add(1, snapFirstBlockOff+2, []byte{0x80})            // bit flip in bucket payload
	f.Add(2, snapFirstBlockOff, []byte{0, 0, 0, 4, 1, 2})  // spliced garbage block
	f.Add(2, len(data), []byte{0xde, 0xad})                // trailing garbage

	f.Fuzz(func(t *testing.T, mode, pos int, chunk []byte) {
		mutated := mutateSnapshot(data, mode, pos, chunk)

		tr, seq, dig, err := decodeSnapshot(bytes.NewReader(mutated), int64(len(mutated)))
		if err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error does not wrap ErrCorrupt: %v", err)
		}
		if err == nil && bytes.Equal(mutated, data) {
			if seq != 40 || dig != 0x1234_5678_9abc_def0 || tr.Len() != 40 {
				t.Fatalf("pristine decode: seq=%d dig=%x len=%d", seq, dig, tr.Len())
			}
		}

		// Stream mode (replication bootstrap: size unknown) must reach
		// the same verdict; the budget only tightens allocations.
		_, _, _, serr := decodeSnapshot(bytes.NewReader(mutated), -1)
		if (serr == nil) != (err == nil) {
			t.Fatalf("stream decode verdict %v, file decode verdict %v", serr, err)
		}

		// The scrub verifier walks the same checksums without building a
		// tree; it must agree on intact vs damaged.
		path := filepath.Join(t.TempDir(), "SNAPSHOT")
		if werr := os.WriteFile(path, mutated, 0o600); werr != nil {
			t.Fatal(werr)
		}
		_, _, _, unit, scrubErr := scrubSnapshotFile(path)
		if (scrubErr == nil) != (err == nil) {
			t.Fatalf("scrub verdict %v (unit %q), decode verdict %v", scrubErr, unit, err)
		}
		if scrubErr != nil && unit != UnitSnapshotHeader && unit != UnitSnapshotBlock {
			t.Fatalf("scrub unit = %q", unit)
		}
	})
}

// TestSnapshotFlipAtEveryByte is the deterministic exhaustive core of
// FuzzSnapshot: one bit flip at every byte offset of a small snapshot
// must be rejected by both the decoder and the scrub verifier — no
// byte of the stream is outside checksum coverage.
func TestSnapshotFlipAtEveryByte(t *testing.T) {
	data := pristineSnapshot(t, 12)
	dir := t.TempDir()
	for off := 0; off < len(data); off++ {
		mutated := append([]byte(nil), data...)
		mutated[off] ^= 0x10
		if _, _, _, err := decodeSnapshot(bytes.NewReader(mutated), int64(len(mutated))); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: decode accepted damaged stream (err=%v)", off, err)
		}
		path := filepath.Join(dir, fmt.Sprintf("SNAP-%d", off))
		if err := os.WriteFile(path, mutated, 0o600); err != nil {
			t.Fatal(err)
		}
		if _, _, _, _, err := scrubSnapshotFile(path); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flip at byte %d: scrub accepted damaged file (err=%v)", off, err)
		}
	}
}

// TestSnapshotTruncationAtEveryOffset cuts the stream after every byte
// and checks the decoder rejects each cut as corrupt — a partial
// snapshot must never install.
func TestSnapshotTruncationAtEveryOffset(t *testing.T) {
	data := pristineSnapshot(t, 12)
	for cut := 0; cut < len(data); cut++ {
		if _, _, _, err := decodeSnapshot(bytes.NewReader(data[:cut]), int64(cut)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("cut at %d: decode accepted truncated stream (err=%v)", cut, err)
		}
	}
}
