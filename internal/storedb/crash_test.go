package storedb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// Crash-recovery tests. crashSim drives the testFS hooks to simulate a
// power loss at any chosen fsync point of a commit or compaction:
//
//   - Data written to a file but not yet fsynced vanishes (the file is
//     truncated back to its last synced size).
//   - A rename not yet covered by a directory fsync is rolled back: the
//     file reappears at its old path and the old destination content
//     returns. A remove in the same window is adversarially treated as
//     durable — real filesystems may persist independent metadata
//     updates in any order, which is exactly the hazard the
//     rename-then-dir-sync ordering exists to close.
//
// The main test runs a scripted workload, killing at the 1st, 2nd, 3rd,
// ... sync point until a run completes untouched, and after every crash
// verifies the invariant: recovery keeps every acknowledged commit and
// never resurrects an unacknowledged one.

var errKilled = errors.New("simulated power loss")

type nsEvent struct {
	kind       string // "rename", "remove", or "create"
	oldPath    string
	newPath    string
	saved      []byte // prior content of the destination (rename) — nil if absent
	savedOK    bool
	oldDurable int64 // prior durable size of the destination
}

type crashSim struct {
	t   *testing.T
	dir string
	// mu serializes the hooks: with background compaction the commit
	// path and the compactor goroutine hit the filesystem concurrently,
	// and the simulator's bookkeeping must stay consistent across both.
	mu      sync.Mutex
	killAt  int // 1-based index of the sync-family call that fails
	calls   int
	killed  bool
	durable map[string]int64
	pending []nsEvent // namespace ops since the last successful dir sync
}

func newCrashSim(t *testing.T, dir string, killAt int) *crashSim {
	return &crashSim{t: t, dir: dir, killAt: killAt, durable: make(map[string]int64)}
}

// install points the package's fsHooks at the simulator. The caller
// must arrange restore (defer sim.uninstall()).
func (s *crashSim) install() {
	installFS(&fsHooks{
		write: func(f *os.File, p []byte, label string) (int, error) {
			s.mu.Lock()
			dead := s.killed
			s.mu.Unlock()
			if dead {
				return 0, errKilled
			}
			return f.Write(p)
		},
		created: func(path string) {
			// The new file's directory entry is not durable until the
			// next dir sync; a power loss before then loses the file.
			s.mu.Lock()
			s.pending = append(s.pending, nsEvent{kind: "create", oldPath: path})
			s.mu.Unlock()
		},
		sync: func(f *os.File, label string) error {
			if s.tick() {
				return errKilled
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if info, err := f.Stat(); err == nil {
				s.mu.Lock()
				s.durable[f.Name()] = info.Size()
				s.mu.Unlock()
			}
			return nil
		},
		syncDir: func(path string) error {
			if s.tick() {
				return errKilled
			}
			s.mu.Lock()
			s.pending = nil // namespace ops are now durable
			s.mu.Unlock()
			return nil
		},
		rename: func(oldpath, newpath string) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.killed {
				return errKilled
			}
			ev := nsEvent{kind: "rename", oldPath: oldpath, newPath: newpath, oldDurable: s.durable[newpath]}
			if prior, err := os.ReadFile(newpath); err == nil {
				ev.saved, ev.savedOK = prior, true
			}
			if err := os.Rename(oldpath, newpath); err != nil {
				return err
			}
			s.pending = append(s.pending, ev)
			s.durable[newpath] = s.durable[oldpath]
			delete(s.durable, oldpath)
			return nil
		},
		remove: func(path string) error {
			s.mu.Lock()
			defer s.mu.Unlock()
			if s.killed {
				return errKilled
			}
			if err := os.Remove(path); err != nil {
				return err
			}
			s.pending = append(s.pending, nsEvent{kind: "remove", oldPath: path})
			delete(s.durable, path)
			return nil
		},
	})
}

func (s *crashSim) uninstall() { installFS(nil) }

// tick counts one sync point and reports whether the simulated power
// loss hits it. After the kill every further operation fails too — the
// process is dead.
func (s *crashSim) tick() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.killed {
		return true
	}
	s.calls++
	if s.killAt > 0 && s.calls == s.killAt {
		s.killed = true
		return true
	}
	return false
}

// wasKilled reports whether the simulated power loss has fired.
func (s *crashSim) wasKilled() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.killed
}

// powerLoss rewrites the directory to its worst-case post-crash state:
// pending renames roll back and pending creates vanish (their dir
// entry never reached disk) while pending removes stick, then every
// surviving file is truncated to its last fsynced size.
func (s *crashSim) powerLoss() {
	for i := len(s.pending) - 1; i >= 0; i-- {
		ev := s.pending[i]
		if ev.kind == "create" {
			if err := os.Remove(ev.oldPath); err != nil && !os.IsNotExist(err) {
				s.t.Fatalf("rollback create: %v", err)
			}
			delete(s.durable, ev.oldPath)
			continue
		}
		if ev.kind != "rename" {
			continue // removes are adversarially durable
		}
		if err := os.Rename(ev.newPath, ev.oldPath); err != nil {
			s.t.Fatalf("rollback rename: %v", err)
		}
		s.durable[ev.oldPath] = s.durable[ev.newPath]
		if ev.savedOK {
			if err := os.WriteFile(ev.newPath, ev.saved, 0o600); err != nil {
				s.t.Fatalf("rollback rename content: %v", err)
			}
			s.durable[ev.newPath] = ev.oldDurable
		} else {
			delete(s.durable, ev.newPath)
		}
	}
	s.pending = nil

	entries, err := os.ReadDir(s.dir)
	if err != nil {
		s.t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		if err := os.Truncate(path, s.durable[path]); err != nil {
			s.t.Fatalf("truncate %s: %v", path, err)
		}
	}
}

// TestCrashAtEverySyncPoint kills the process at every fsync point of a
// commit-heavy workload (including mid-compaction) and checks that
// recovery preserves exactly the acknowledged commits: nothing acked is
// lost, nothing unacked is resurrected. The background arm runs the
// default configuration, where the compactor goroutine's snapshot
// writes and WAL tail swaps race the live group commits — every
// interleaving of a kill with that race must still uphold the
// invariant. The on-commit arm pins the legacy inline path.
func TestCrashAtEverySyncPoint(t *testing.T) {
	for _, arm := range []struct {
		name     string
		onCommit bool
	}{
		{"background", false},
		{"on-commit", true},
	} {
		t.Run(arm.name, func(t *testing.T) {
			crashAtEverySyncPoint(t, arm.onCommit)
		})
	}
}

func crashAtEverySyncPoint(t *testing.T, onCommit bool) {
	const commits = 9
	for killAt := 1; ; killAt++ {
		dir := t.TempDir()
		sim := newCrashSim(t, dir, killAt)
		sim.install()

		acked := map[string]bool{}
		db, err := Open(Options{
			Dir: dir, SyncWrites: true, CompactEvery: 3,
			ReplLogBuffer: -1, CompactOnCommit: onCommit,
		})
		switch {
		case err != nil && !sim.wasKilled():
			sim.uninstall()
			t.Fatalf("killAt=%d: open: %v", killAt, err)
		case err != nil:
			// The kill landed inside Open itself (e.g. the WAL-create
			// directory sync): nothing was acked, recovery is checked
			// below.
		default:
			for i := 0; i < commits; i++ {
				key := fmt.Sprintf("k%02d", i)
				err := db.Update(func(tx *Tx) error {
					return tx.MustBucket("b").Put([]byte(key), []byte("v"))
				})
				if err != nil {
					// A failed commit — or the sticky failed state a
					// dead compaction left behind — means the process
					// is dead.
					break
				}
				acked[key] = true
			}
			db.Close()
		}

		survived := !sim.wasKilled()
		sim.powerLoss()
		sim.uninstall()

		// Recover and check the invariant.
		db2, err := Open(Options{Dir: dir, SyncWrites: true})
		if err != nil {
			t.Fatalf("killAt=%d: recovery failed: %v", killAt, err)
		}
		err = db2.View(func(tx *Tx) error {
			b := tx.MustBucket("b")
			for i := 0; i < commits; i++ {
				key := fmt.Sprintf("k%02d", i)
				_, present := b.Get([]byte(key))
				if acked[key] && !present {
					t.Errorf("killAt=%d: acked commit %s lost", killAt, key)
				}
				if !acked[key] && present {
					t.Errorf("killAt=%d: unacked commit %s resurrected", killAt, key)
				}
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		db2.Close()

		if survived {
			// The workload outran the kill point: every sync point has
			// been exercised.
			if killAt < 5 {
				t.Fatalf("workload hit only %d sync points; test is vacuous", killAt-1)
			}
			return
		}
	}
}

// TestSnapshotRenameDurableBeforeWALRemoval is the regression test for
// the compaction durability bug: the snapshot rename must be made
// durable (directory fsync) before the WAL it replaces is removed.
// Otherwise a crash can persist the removal but lose the rename,
// leaving the old snapshot with no log — every commit since the old
// snapshot would be lost.
func TestSnapshotRenameDurableBeforeWALRemoval(t *testing.T) {
	dir := t.TempDir()
	var opsMu sync.Mutex
	var ops []string
	note := func(op string) {
		opsMu.Lock()
		ops = append(ops, op)
		opsMu.Unlock()
	}
	installFS(&fsHooks{
		sync: func(f *os.File, label string) error {
			note("sync:" + label)
			return f.Sync()
		},
		syncDir: func(path string) error {
			note("syncdir")
			return nil
		},
		rename: func(oldpath, newpath string) error {
			note("rename:" + filepath.Base(newpath))
			return os.Rename(oldpath, newpath)
		},
		remove: func(path string) error {
			note("remove:" + filepath.Base(path))
			return os.Remove(path)
		},
	})
	defer installFS(nil)

	db, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	ops = nil
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}

	idx := func(op string) int {
		for i, o := range ops {
			if o == op {
				return i
			}
		}
		return -1
	}
	rename := idx("rename:SNAPSHOT")
	remove := idx("remove:WAL")
	if rename < 0 || remove < 0 {
		t.Fatalf("compaction ops missing rename/remove: %v", ops)
	}
	syncBetween := false
	for i := rename + 1; i < remove; i++ {
		if ops[i] == "syncdir" {
			syncBetween = true
		}
	}
	if !syncBetween {
		t.Fatalf("no directory fsync between snapshot rename and WAL removal: %v", ops)
	}
	// And the removal itself must be followed by a directory fsync so
	// stale batches cannot reappear after the snapshot supersedes them.
	syncAfter := false
	for i := remove + 1; i < len(ops); i++ {
		if ops[i] == "syncdir" {
			syncAfter = true
		}
	}
	if !syncAfter {
		t.Fatalf("no directory fsync after WAL removal: %v", ops)
	}
}

// TestWALCreateDurableBeforeFirstCommit is the regression test for the
// WAL-creation durability bug: a freshly created log file's directory
// entry must be fsynced before the first commit is acknowledged,
// otherwise a crash right after the first commit can lose the whole
// file — and with it an acked write. (The kill-at-every-sync suite
// exercises the crash itself; this pins the ordering.)
func TestWALCreateDurableBeforeFirstCommit(t *testing.T) {
	dir := t.TempDir()
	var ops []string
	installFS(&fsHooks{
		created: func(path string) {
			ops = append(ops, "create:"+filepath.Base(path))
		},
		syncDir: func(path string) error {
			ops = append(ops, "syncdir")
			return realSyncDir(path)
		},
		sync: func(f *os.File, label string) error {
			ops = append(ops, "sync:"+label)
			return f.Sync()
		},
	})
	defer installFS(nil)

	db, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte("k"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}

	create, dirSync, firstCommit := -1, -1, -1
	for i, op := range ops {
		switch {
		case op == "create:WAL" && create < 0:
			create = i
		case op == "syncdir" && create >= 0 && dirSync < 0:
			dirSync = i
		case op == "sync:wal" && firstCommit < 0:
			firstCommit = i
		}
	}
	if create < 0 {
		t.Fatalf("WAL never created: %v", ops)
	}
	if dirSync < 0 || dirSync > firstCommit {
		t.Fatalf("no directory fsync between WAL creation and first commit: %v", ops)
	}
}

// TestFailedWALSyncDoesNotResurrect covers the writer-side half of the
// invariant directly: a commit whose WAL fsync fails is reported as
// failed, and the batch bytes must not linger where recovery would
// replay them as committed.
func TestFailedWALSyncDoesNotResurrect(t *testing.T) {
	dir := t.TempDir()
	failNext := false
	installFS(&fsHooks{
		sync: func(f *os.File, label string) error {
			if failNext && label == "wal" {
				failNext = false
				return errors.New("injected sync failure")
			}
			return f.Sync()
		},
	})
	defer installFS(nil)

	db, err := Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte("good"), []byte("v"))
	}); err != nil {
		t.Fatal(err)
	}
	failNext = true
	err = db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte("bad"), []byte("v"))
	})
	if err == nil {
		t.Fatal("expected sync failure")
	}
	// The failed batch must not be visible now...
	db.View(func(tx *Tx) error {
		if _, ok := tx.MustBucket("b").Get([]byte("bad")); ok {
			t.Fatal("failed commit visible in-memory")
		}
		return nil
	})
	db.Close()

	// ...and must not come back after recovery.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	db2.View(func(tx *Tx) error {
		b := tx.MustBucket("b")
		if _, ok := b.Get([]byte("good")); !ok {
			t.Fatal("acked commit lost")
		}
		if _, ok := b.Get([]byte("bad")); ok {
			t.Fatal("unacked commit resurrected by recovery")
		}
		return nil
	})
	if got := db2.Seq(); got != 1 {
		t.Fatalf("recovered seq = %d, want 1", got)
	}
}
