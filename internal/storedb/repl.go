package storedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
)

// WAL tailing and export: the primary/replica replication tier ships
// committed batches between databases. The primary side exports them
// with Since (from an in-memory ring of recent batches, falling back
// to the on-disk WAL), signals new commits via CommitSignal, and dumps
// full snapshot streams with WriteSnapshotTo for replica bootstrap.
// The replica side applies shipped batches with ApplyBatch (which
// writes them through the replica's own WAL for durability) and
// installs bootstrap streams with RestoreSnapshotFrom.

// Op is one key-value operation of an exported batch. Key carries the
// bucket prefix, exactly as stored.
type Op struct {
	// Delete marks a deletion; otherwise the op is a put.
	Delete bool
	// Key is the full key, bucket prefix included.
	Key []byte
	// Val is the value for puts; nil for deletes.
	Val []byte
}

// Batch is one committed transaction in exported form, as shipped to
// replicas. Seq numbers are contiguous on the primary; a replica
// applies them strictly in order.
type Batch struct {
	// Seq is the batch's commit sequence number.
	Seq uint64
	// Ops are the batch's operations in commit order.
	Ops []Op
}

func exportBatch(b walBatch) Batch {
	out := Batch{Seq: b.seq, Ops: make([]Op, len(b.ops))}
	for i, op := range b.ops {
		out.Ops[i] = Op{Delete: op.op == opDelete, Key: op.key, Val: op.val}
	}
	return out
}

func importBatch(b Batch) walBatch {
	out := walBatch{seq: b.Seq, ops: make([]walOp, len(b.Ops))}
	for i, op := range b.Ops {
		kind := opPut
		if op.Delete {
			kind = opDelete
		}
		out.ops[i] = walOp{op: kind, key: op.Key, val: op.Val}
	}
	return out
}

// EncodeBatch serialises a batch into the WAL payload form (sequence
// number, op count, ops) that replication frames carry on the wire.
func EncodeBatch(b Batch) []byte {
	wb := importBatch(b)
	return wb.encode()
}

// DecodeBatch parses a WAL payload produced by EncodeBatch. The frame
// CRC must already have been verified; this checks structure only.
func DecodeBatch(payload []byte) (Batch, error) {
	wb, err := decodeWalBatch(payload)
	if err != nil {
		return Batch{}, err
	}
	return exportBatch(wb), nil
}

// batchRing is a fixed-capacity ring of the most recent committed
// batches, kept so replicas can tail an in-memory database (and skip
// disk reads on a durable one). Each entry carries the history digest
// at the batch's predecessor, so replication frames can be served with
// their chain proof without re-deriving it. Guarded by DB.replMu.
type batchRing struct {
	buf   []ringEntry
	start int // index of the oldest entry
	n     int
}

type ringEntry struct {
	b    Batch
	prev uint64 // chain digest at b.Seq-1
}

func newBatchRing(capacity int) *batchRing {
	if capacity <= 0 {
		return &batchRing{}
	}
	return &batchRing{buf: make([]ringEntry, capacity)}
}

func (r *batchRing) push(b Batch, prev uint64) {
	if len(r.buf) == 0 {
		return
	}
	e := ringEntry{b: b, prev: prev}
	if r.n < len(r.buf) {
		r.buf[(r.start+r.n)%len(r.buf)] = e
		r.n++
		return
	}
	r.buf[r.start] = e
	r.start = (r.start + 1) % len(r.buf)
}

// oldestSeq returns the sequence number of the oldest retained batch.
func (r *batchRing) oldestSeq() (uint64, bool) {
	if r.n == 0 {
		return 0, false
	}
	return r.buf[r.start].b.Seq, true
}

// digestAt returns the chain digest at the given sequence, derivable
// from the ring as the predecessor digest of the entry at seq+1.
func (r *batchRing) digestAt(seq uint64) (uint64, bool) {
	for i := r.n - 1; i >= 0; i-- {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.b.Seq == seq+1 {
			return e.prev, true
		}
		if e.b.Seq <= seq {
			break
		}
	}
	return 0, false
}

// truncateTo drops retained batches with Seq > seq, after a tail
// truncation or recovery rewound the database below the ring's head.
func (r *batchRing) truncateTo(seq uint64) {
	for r.n > 0 {
		idx := (r.start + r.n - 1) % len(r.buf)
		if r.buf[idx].b.Seq <= seq {
			return
		}
		r.buf[idx] = ringEntry{}
		r.n--
	}
}

// since calls fn for every retained batch with Seq > from, in order,
// up to max batches (max <= 0 means all). ok reports whether the ring
// still covers position from+1; callers only invoke it when batches
// newer than from exist, so an empty ring always reports false.
func (r *batchRing) since(from uint64, max int, fn func(Batch) error) (ok bool, err error) {
	return r.sinceWithPrev(from, max, func(b Batch, _ uint64) error { return fn(b) })
}

// sinceWithPrev is since with each batch's predecessor digest.
func (r *batchRing) sinceWithPrev(from uint64, max int, fn func(Batch, uint64) error) (ok bool, err error) {
	oldest, any := r.oldestSeq()
	if !any || from+1 < oldest {
		return false, nil
	}
	sent := 0
	for i := 0; i < r.n; i++ {
		e := r.buf[(r.start+i)%len(r.buf)]
		if e.b.Seq <= from {
			continue
		}
		if max > 0 && sent >= max {
			break
		}
		if err := fn(e.b, e.prev); err != nil {
			return true, err
		}
		sent++
	}
	return true, nil
}

// Seq returns the last committed batch sequence number.
func (db *DB) Seq() uint64 { return db.seq.Load() }

// SnapSeq returns the sequence number covered by the newest snapshot —
// the compaction floor below which Since cannot serve.
func (db *DB) SnapSeq() uint64 { return db.snapSeq.Load() }

// ReplicaMode reports whether local writes are refused (SetReplicaMode).
func (db *DB) ReplicaMode() bool { return db.replicaMode.Load() }

// SetReplicaMode toggles replica mode: while set, Update returns
// ErrReplica and the database changes only through ApplyBatch and
// RestoreSnapshotFrom. Promotion clears it.
func (db *DB) SetReplicaMode(v bool) { db.replicaMode.Store(v) }

// CommitSignal returns a channel that is closed at the next commit
// (Update or ApplyBatch). Callers re-arm by calling it again; a
// long-poll replication handler selects on it to stream new batches
// the moment they exist.
func (db *DB) CommitSignal() <-chan struct{} {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.commitC == nil {
		db.commitC = make(chan struct{})
	}
	return db.commitC
}

// noteCommit records a committed batch in the tail ring, extends the
// history digest chain, and wakes CommitSignal waiters. Called with
// commitMu held, in commit order — the one place the chain advances.
func (db *DB) noteCommit(b walBatch) {
	db.replMu.Lock()
	prev := db.chainDigest.Load()
	if db.recent != nil {
		db.recent.push(exportBatch(b), prev)
	}
	db.chainDigest.Store(chainStep(prev, b.encode()))
	db.chainSeq = b.seq
	if db.commitC != nil {
		close(db.commitC)
		db.commitC = nil
	}
	db.replMu.Unlock()
}

// Since streams committed batches with Seq > from to fn in order, up
// to max batches (max <= 0 means everything available). It serves from
// the in-memory tail ring when possible and falls back to scanning the
// on-disk WAL; if the requested position predates both, it returns
// ErrCompacted and the caller must bootstrap from a snapshot.
func (db *DB) Since(from uint64, max int, fn func(Batch) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if from >= db.Seq() {
		return nil // already caught up
	}

	db.replMu.Lock()
	ring := db.recent
	var ok bool
	var err error
	if ring != nil {
		ok, err = ring.since(from, max, fn)
	}
	db.replMu.Unlock()
	if ok {
		return err
	}

	// Ring cannot serve the position; fall back to the on-disk WAL.
	// The WAL only holds batches newer than the last snapshot, so a
	// position before the snapshot is gone for good.
	if db.opts.Dir == "" || from < db.snapSeq.Load() {
		return ErrCompacted
	}
	genBefore := db.walMutGen.Load()
	durable := db.seq.Load()
	count := 0
	last, _, err := scanWal(db.walPath(), func(b walBatch) error {
		if b.seq <= from {
			return nil
		}
		if max > 0 && count >= max {
			return errScanDone
		}
		count++
		return fn(exportBatch(b))
	})
	if err == errScanDone {
		return nil
	}
	if err != nil {
		return err
	}
	if cerr := db.noteWalScanShort(last, durable, genBefore); cerr != nil {
		return cerr
	}
	return nil
}

// noteWalScanShort classifies a WAL scan that ran to its natural end.
// Frames acknowledged before the scan began (seq <= durable) were fully
// appended by then, so a scan that stops short of them on a quiescent
// log hit a bad frame in the middle: mid-log corruption, which the
// torn-tail policy must not silently absorb. The seqlock generation
// distinguishes that from racing a compaction swap or truncation, which
// legitimately rewrites the file mid-scan and is not evidence.
func (db *DB) noteWalScanShort(last, durable, genBefore uint64) error {
	covered := last
	if snap := db.snapSeq.Load(); covered < snap {
		covered = snap
	}
	if covered >= durable {
		return nil // everything acknowledged is accounted for
	}
	if db.walMutGen.Load() != genBefore || genBefore%2 == 1 || db.failed.Load() {
		return nil // the file was in motion; the next scan decides
	}
	err := fmt.Errorf("%w: wal readable through seq %d, acknowledged %d", ErrCorrupt, covered, durable)
	db.markCorrupt(UnitWALFrame, err)
	return db.corruptErr()
}

// errScanDone stops a WAL scan early once max batches were emitted.
var errScanDone = fmt.Errorf("storedb: scan done")

// SetApplyHook registers fn to run after every replicated commit: once
// per ApplyBatch with the batch just applied, and once after
// RestoreSnapshotFrom with an op-less Batch carrying the restored
// sequence (meaning "the entire state was replaced"). The hook runs
// with the commit lock held, so it must not call Update, ApplyBatch,
// Compact, or RestoreSnapshotFrom; View is safe. Servers use it to
// invalidate derived caches when replication changes state underneath
// them. A nil fn removes the hook.
func (db *DB) SetApplyHook(fn func(Batch)) {
	db.applyMu.Lock()
	db.applyHook = fn
	db.applyMu.Unlock()
}

func (db *DB) fireApplyHook(b Batch) {
	db.applyMu.Lock()
	fn := db.applyHook
	db.applyMu.Unlock()
	if fn != nil {
		fn(b)
	}
}

// ApplyBatch applies one batch shipped from the primary. Batches must
// arrive strictly in order: a batch at or before the current sequence
// is ignored (idempotent resume), the next sequence is applied and
// written through the local WAL, and anything further ahead returns
// ErrSeqGap. ApplyBatch works even in replica mode — it is how a
// replica changes.
func (db *DB) ApplyBatch(b Batch) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.corrupt.Load() {
		return db.corruptErr()
	}
	if db.failed.Load() {
		return db.failedErr()
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.corrupt.Load() {
		return db.corruptErr()
	}
	if db.failed.Load() {
		return db.failedErr()
	}
	cur := db.seq.Load()
	if b.Seq <= cur {
		return nil // duplicate delivery during resume
	}
	if b.Seq != cur+1 {
		return fmt.Errorf("%w: got batch %d after %d", ErrSeqGap, b.Seq, cur)
	}

	wb := importBatch(b)
	if db.wal != nil {
		n, err := db.wal.appendGroup([]walBatch{wb})
		if err != nil {
			db.fail(err)
			return db.failedErr()
		}
		db.walBytes.Add(uint64(n))
		if db.opts.SyncWrites {
			db.walFsyncs.Add(1)
		}
	}
	db.walGroups.Add(1)
	db.walBatches.Add(1)
	t := *db.current.Load()
	for _, op := range wb.ops {
		switch op.op {
		case opPut:
			t = t.Put(op.key, op.val)
		case opDelete:
			t, _ = t.Delete(op.key)
		}
	}
	db.writeMu.Lock()
	db.current.Store(&t)
	db.seq.Store(b.Seq)
	db.staged = t
	db.stageSeq = b.Seq
	db.writeMu.Unlock()
	// A replicated epoch bump teaches this replica the cluster's
	// promotion epoch — the only way an epoch ever changes under it.
	for _, op := range wb.ops {
		if op.op == opPut && len(op.val) == 8 && bytes.Equal(op.key, epochKey()) {
			if e := binary.BigEndian.Uint64(op.val); e > db.epoch.Load() {
				db.epoch.Store(e)
			}
		}
	}
	db.noteCommit(wb)
	db.fireApplyHook(b)

	db.pending++
	db.maybeCompactLocked()
	return nil
}

// WriteSnapshotTo streams a consistent snapshot of the current state
// to w in the snapshot file layout (per-block checksums included) and
// returns the sequence number it covers. The snapshot is taken
// atomically but encoding happens outside the write lock: writers keep
// committing while the dump streams. It works on a corrupt database —
// the in-memory tree predates the corruption — which is what lets a
// still-healthy replica bootstrap even while its primary awaits repair.
func (db *DB) WriteSnapshotTo(w io.Writer) (uint64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	db.commitMu.Lock()
	t := *db.current.Load()
	seq := db.seq.Load()
	digest := db.chainDigest.Load()
	db.commitMu.Unlock()
	if err := encodeSnapshot(w, t, seq, digest); err != nil {
		return seq, err
	}
	return seq, nil
}

// RestoreSnapshotFrom replaces the database's entire state with the
// snapshot stream read from r (every checksum verified before anything
// is installed) and returns the restored sequence number. On a durable
// database the snapshot is persisted and the WAL restarted, so a crash
// right after bootstrap recovers to the restored state. It is also the
// recovery path from the sticky corrupt state — but only after
// QuarantineCorrupt has moved the damaged files aside; until then it
// refuses with ErrQuarantineRequired so the corruption evidence is
// never overwritten.
func (db *DB) RestoreSnapshotFrom(r io.Reader) (uint64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.checkRestoreAllowed(); err != nil {
		return 0, err // cheap pre-check before decoding the stream
	}
	t, seq, digest, err := decodeSnapshot(r, -1)
	if err != nil {
		return 0, err
	}

	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if err := db.checkRestoreAllowed(); err != nil {
		return 0, err
	}
	if db.failed.Load() && !db.corrupt.Load() {
		return 0, db.failedErr()
	}
	if db.opts.Dir != "" {
		if err := writeSnapshot(db.opts.Dir, t, seq, digest); err != nil {
			db.fail(err)
			return 0, db.failedErr()
		}
		if err := db.resetWalLocked(); err != nil {
			db.fail(err)
			return 0, db.failedErr()
		}
	}
	db.writeMu.Lock()
	db.current.Store(&t)
	db.seq.Store(seq)
	db.staged = t
	db.stageSeq = seq
	db.writeMu.Unlock()
	db.snapSeq.Store(seq)
	db.snapDigest.Store(digest)
	db.epoch.Store(epochFromTree(t))
	db.pending = 0

	// The tail ring describes the pre-restore history; drop it and wake
	// any waiters so cascading replicas re-sync from the new position.
	// The digest chain restarts from the stream's anchor.
	db.replMu.Lock()
	if db.recent != nil {
		db.recent = newBatchRing(len(db.recent.buf))
	}
	db.chainSeq = seq
	db.chainDigest.Store(digest)
	if db.commitC != nil {
		close(db.commitC)
		db.commitC = nil
	}
	db.replMu.Unlock()

	// The store now holds freshly verified state; leave the corrupt
	// quarantine behind.
	db.corruptMu.Lock()
	db.corruptCause, db.corruptUnit, db.quarantined = nil, "", false
	db.corruptMu.Unlock()
	db.corrupt.Store(false)

	// An op-less batch tells the hook the whole state changed.
	db.fireApplyHook(Batch{Seq: seq})
	return seq, nil
}

// checkRestoreAllowed gates RestoreSnapshotFrom on the corrupt state:
// a corrupt store may only be restored after its damaged files were
// quarantined.
func (db *DB) checkRestoreAllowed() error {
	if !db.corrupt.Load() {
		return nil
	}
	db.corruptMu.Lock()
	q := db.quarantined
	db.corruptMu.Unlock()
	if !q {
		return ErrQuarantineRequired
	}
	return nil
}

// ringFloorForTest exposes the oldest retained ring sequence to tests.
func (db *DB) ringFloorForTest() (uint64, bool) {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	if db.recent == nil {
		return 0, false
	}
	return db.recent.oldestSeq()
}
