package storedb

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Write-ahead log. Each committed transaction appends one framed record:
//
//	[4 bytes payload length][4 bytes CRC-32 (IEEE) of payload][payload]
//
// The payload is a batch:
//
//	[8 bytes sequence number][uvarint op count] then per op:
//	[1 byte op (1=put, 2=delete)][uvarint key len][key]
//	and for puts [uvarint value len][value]
//
// Recovery replays records in order. A record with a bad length or CRC,
// or one whose sequence number does not directly follow its
// predecessor's, is treated as a torn tail: everything before it is
// kept, the file is truncated at its start, and recovery succeeds.
// Corruption that is *not* at the tail cannot be distinguished from a
// torn tail by the reader, so the same policy applies; the snapshot
// sequence number guards against replaying stale batches after
// compaction. Together these give the recovery prefix property: replay
// always yields an exact prefix of the committed batches, never a torn,
// duplicated, or reordered one.

const (
	opPut    byte = 1
	opDelete byte = 2

	walHeaderSize = 8 // length + crc
	maxRecordSize = 1 << 30
)

type walOp struct {
	op  byte
	key []byte
	val []byte
}

type walBatch struct {
	seq uint64
	ops []walOp
}

func (b *walBatch) encode() []byte {
	size := 8 + binary.MaxVarintLen64
	for _, op := range b.ops {
		size += 1 + 2*binary.MaxVarintLen64 + len(op.key) + len(op.val)
	}
	buf := make([]byte, 0, size)
	buf = binary.BigEndian.AppendUint64(buf, b.seq)
	buf = binary.AppendUvarint(buf, uint64(len(b.ops)))
	for _, op := range b.ops {
		buf = append(buf, op.op)
		buf = binary.AppendUvarint(buf, uint64(len(op.key)))
		buf = append(buf, op.key...)
		if op.op == opPut {
			buf = binary.AppendUvarint(buf, uint64(len(op.val)))
			buf = append(buf, op.val...)
		}
	}
	return buf
}

func decodeWalBatch(payload []byte) (walBatch, error) {
	var b walBatch
	if len(payload) < 8 {
		return b, fmt.Errorf("%w: short batch header", ErrCorrupt)
	}
	b.seq = binary.BigEndian.Uint64(payload)
	payload = payload[8:]
	count, n := binary.Uvarint(payload)
	// Every op costs at least two payload bytes, so a count beyond the
	// remaining length is corrupt — checked before the ops slice is
	// sized from it.
	if n <= 0 || count > uint64(len(payload)-n) {
		return b, fmt.Errorf("%w: bad op count", ErrCorrupt)
	}
	payload = payload[n:]
	b.ops = make([]walOp, 0, count)
	for i := uint64(0); i < count; i++ {
		if len(payload) < 1 {
			return b, fmt.Errorf("%w: truncated op", ErrCorrupt)
		}
		op := payload[0]
		payload = payload[1:]
		if op != opPut && op != opDelete {
			return b, fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
		}
		klen, n := binary.Uvarint(payload)
		if n <= 0 || uint64(len(payload)-n) < klen {
			return b, fmt.Errorf("%w: bad key length", ErrCorrupt)
		}
		payload = payload[n:]
		key := payload[:klen:klen]
		payload = payload[klen:]
		var val []byte
		if op == opPut {
			vlen, n := binary.Uvarint(payload)
			if n <= 0 || uint64(len(payload)-n) < vlen {
				return b, fmt.Errorf("%w: bad value length", ErrCorrupt)
			}
			payload = payload[n:]
			val = payload[:vlen:vlen]
			payload = payload[vlen:]
		}
		b.ops = append(b.ops, walOp{op: op, key: key, val: val})
	}
	if len(payload) != 0 {
		return b, fmt.Errorf("%w: trailing bytes in batch", ErrCorrupt)
	}
	return b, nil
}

// walWriter appends framed batches to the log file. It tracks the
// offset of the last good frame boundary so a failed append can be
// rewound: a batch whose write or fsync errored was reported as failed
// to the committer, and must not linger in the file where recovery
// would resurrect it as committed.
type walWriter struct {
	f    *os.File
	sync bool
	off  int64 // end of the last fully appended frame
}

func openWalWriter(path string, sync bool) (*walWriter, error) {
	_, statErr := os.Stat(path)
	fresh := os.IsNotExist(statErr)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, fmt.Errorf("storedb: open wal: %w", err)
	}
	if fresh {
		// The file exists but its directory entry does not survive a
		// power loss until the parent directory is synced — a crash
		// right after the first commit could otherwise lose the whole
		// log while the commit was already acknowledged.
		fsCreated(path)
		if err := fsSyncDir(filepath.Dir(path)); err != nil {
			f.Close()
			return nil, fmt.Errorf("storedb: sync dir after wal create: %w", err)
		}
	}
	info, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("storedb: stat wal: %w", err)
	}
	return &walWriter{f: f, sync: sync, off: info.Size()}, nil
}

// appendGroup appends the batches as consecutive frames with a single
// buffered write and, when syncing, a single fsync covering them all —
// the group-commit amortization. On any error the file is rewound to
// the last good frame boundary: the whole group was reported as failed
// and none of it may linger where recovery would resurrect it.
func (w *walWriter) appendGroup(batches []walBatch) (int, error) {
	payloads := make([][]byte, len(batches))
	size := 0
	for i := range batches {
		payloads[i] = batches[i].encode()
		size += walHeaderSize + len(payloads[i])
	}
	buf := make([]byte, 0, size)
	for _, payload := range payloads {
		var hdr [walHeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
		buf = append(buf, hdr[:]...)
		buf = append(buf, payload...)
	}
	if n, err := fsWrite(w.f, buf, "wal"); err != nil || n != len(buf) {
		w.rewind()
		if err == nil {
			err = fmt.Errorf("short write: %d of %d bytes", n, len(buf))
		}
		return 0, fmt.Errorf("storedb: wal write: %w", err)
	}
	if w.sync {
		if err := fsSync(w.f, "wal"); err != nil {
			w.rewind()
			return 0, fmt.Errorf("storedb: wal sync: %w", err)
		}
	}
	w.off += int64(len(buf))
	return len(buf), nil
}

// syncNow fsyncs the log regardless of the writer's sync mode. The
// promotion path uses it: an epoch bump must be durable even on stores
// opened without SyncWrites. On failure the appended-but-unsynced bytes
// stay; the caller fails sticky and Reopen cuts the unacknowledged tail.
func (w *walWriter) syncNow() error {
	return fsSync(w.f, "wal")
}

// rewind truncates the log back to the last good frame boundary after
// a failed append. Best-effort: if the truncate itself fails the bytes
// stay, and recovery's CRC check will still refuse a torn frame — only
// a fully written frame whose fsync failed needs this.
func (w *walWriter) rewind() {
	_ = w.f.Truncate(w.off)
}

func (w *walWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	return err
}

// scanWal reads batches from the log at path, calling apply for each
// good batch in order, and returns the highest sequence number seen
// plus the offset of the first byte it could not trust (the torn-tail
// boundary). It never modifies the file, so replication tailing can
// scan the log a writer is still appending to.
func scanWal(path string, apply func(walBatch) error) (lastSeq uint64, good int64, err error) {
	return scanWalFrames(path, func(b walBatch, _ int64) error { return apply(b) })
}

// scanWalFrames is scanWal with the end offset of each frame passed to
// apply, so callers (Reopen) can cut the log at an exact frame
// boundary. Frames must be contiguous: a frame whose sequence number
// is not its predecessor's plus one ends the scan as a torn tail —
// duplicated or reordered frames never replay.
func scanWalFrames(path string, apply func(b walBatch, end int64) error) (lastSeq uint64, good int64, err error) {
	f, err := os.Open(path)
	if errors.Is(err, os.ErrNotExist) {
		return 0, 0, nil
	}
	if err != nil {
		return 0, 0, fmt.Errorf("storedb: open wal for replay: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, fmt.Errorf("storedb: stat wal for replay: %w", err)
	}
	size := info.Size()

	r := bufio.NewReaderSize(f, 1<<16)
	var offset int64
	for {
		var hdr [walHeaderSize]byte
		if _, err := io.ReadFull(r, hdr[:]); err != nil {
			// Clean EOF or a torn header: keep everything before it.
			break
		}
		length := binary.BigEndian.Uint32(hdr[0:4])
		wantCRC := binary.BigEndian.Uint32(hdr[4:8])
		// A length pointing past the bytes actually on disk is a torn or
		// forged header; checking before the allocation keeps a corrupt
		// frame from costing a payload-sized buffer nothing can fill.
		if length == 0 || length > maxRecordSize ||
			int64(length) > size-offset-walHeaderSize {
			break
		}
		payload := make([]byte, length)
		if _, err := io.ReadFull(r, payload); err != nil {
			break
		}
		if crc32.ChecksumIEEE(payload) != wantCRC {
			break
		}
		batch, derr := decodeWalBatch(payload)
		if derr != nil {
			break
		}
		if lastSeq != 0 && batch.seq != lastSeq+1 {
			break
		}
		end := offset + walHeaderSize + int64(length)
		if err := apply(batch, end); err != nil {
			return lastSeq, offset, err
		}
		lastSeq = batch.seq
		offset = end
	}
	return lastSeq, offset, nil
}

// replayWal reads batches from the log at path, calling apply for each
// batch in order. A torn or corrupt tail is truncated away. It returns
// the highest sequence number seen.
func replayWal(path string, apply func(walBatch) error) (lastSeq uint64, err error) {
	lastSeq, offset, err := scanWal(path, apply)
	if err != nil {
		return lastSeq, err
	}

	// Truncate any torn tail so future appends start at a clean frame.
	if info, serr := os.Stat(path); serr == nil && info.Size() > offset {
		if terr := os.Truncate(path, offset); terr != nil {
			return lastSeq, fmt.Errorf("storedb: truncate torn wal tail: %w", terr)
		}
	}
	return lastSeq, nil
}
