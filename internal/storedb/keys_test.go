package storedb

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestKeyUint64RoundTripAndOrder(t *testing.T) {
	f := func(a, b uint64) bool {
		ka := AppendUint64(nil, a)
		kb := AppendUint64(nil, b)
		da, rest, err := TakeUint64(ka)
		if err != nil || len(rest) != 0 || da != a {
			return false
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyInt64Order(t *testing.T) {
	f := func(a, b int64) bool {
		ka := AppendInt64(nil, a)
		kb := AppendInt64(nil, b)
		da, _, err := TakeInt64(ka)
		if err != nil || da != a {
			return false
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	// Explicit boundary cases around zero and the extremes.
	vals := []int64{math.MinInt64, -1, 0, 1, math.MaxInt64}
	for i := 1; i < len(vals); i++ {
		ka := AppendInt64(nil, vals[i-1])
		kb := AppendInt64(nil, vals[i])
		if bytes.Compare(ka, kb) >= 0 {
			t.Fatalf("int64 order broken between %d and %d", vals[i-1], vals[i])
		}
	}
}

func TestKeyFloat64Order(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true // NaN has no order; callers must not index NaN
		}
		ka := AppendFloat64(nil, a)
		kb := AppendFloat64(nil, b)
		da, _, err := TakeFloat64(ka)
		if err != nil || (da != a && !(math.Signbit(da) != math.Signbit(a) && a == 0)) {
			// -0 and +0 compare equal but have distinct encodings; accept
			// either decode for zero.
			if !(a == 0 && da == 0) {
				return false
			}
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return true // equal floats (incl. ±0) need no byte equality
		}
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
	vals := []float64{math.Inf(-1), -1e300, -1.5, -1e-300, 0, 1e-300, 1.5, 1e300, math.Inf(1)}
	for i := 1; i < len(vals); i++ {
		ka := AppendFloat64(nil, vals[i-1])
		kb := AppendFloat64(nil, vals[i])
		if bytes.Compare(ka, kb) >= 0 {
			t.Fatalf("float64 order broken between %g and %g", vals[i-1], vals[i])
		}
	}
}

func TestKeyStringRoundTripAndOrder(t *testing.T) {
	f := func(a, b string) bool {
		ka := AppendString(nil, a)
		kb := AppendString(nil, b)
		da, rest, err := TakeString(ka)
		if err != nil || len(rest) != 0 || da != a {
			return false
		}
		cmp := bytes.Compare(ka, kb)
		switch {
		case a < b:
			return cmp < 0
		case a > b:
			return cmp > 0
		default:
			return cmp == 0
		}
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyStringWithNulBytes(t *testing.T) {
	cases := []string{"", "\x00", "a\x00b", "\x00\x00", "a", strings.Repeat("\x00", 10)}
	for _, s := range cases {
		enc := AppendString(nil, s)
		dec, rest, err := TakeString(enc)
		if err != nil || len(rest) != 0 || dec != s {
			t.Fatalf("round trip of %q failed: %q, rest=%d, err=%v", s, dec, len(rest), err)
		}
	}
	// Order with embedded NULs: "a" < "a\x00" < "a\x01".
	a := AppendString(nil, "a")
	b := AppendString(nil, "a\x00")
	c := AppendString(nil, "a\x01")
	if !(bytes.Compare(a, b) < 0 && bytes.Compare(b, c) < 0) {
		t.Fatal("NUL-containing strings are mis-ordered")
	}
}

func TestKeyCompositeOrder(t *testing.T) {
	// Composite (string, uint64) keys sort by string then number.
	mk := func(s string, n uint64) []byte {
		return AppendUint64(AppendString(nil, s), n)
	}
	ks := [][]byte{
		mk("alpha", 5),
		mk("alpha", 10),
		mk("alphaa", 1),
		mk("beta", 0),
	}
	for i := 1; i < len(ks); i++ {
		if bytes.Compare(ks[i-1], ks[i]) >= 0 {
			t.Fatalf("composite keys out of order at %d", i)
		}
	}
	// Decode back.
	s, rest, err := TakeString(ks[1])
	if err != nil || s != "alpha" {
		t.Fatalf("TakeString = %q, %v", s, err)
	}
	n, rest, err := TakeUint64(rest)
	if err != nil || n != 10 || len(rest) != 0 {
		t.Fatalf("TakeUint64 = %d, rest=%d, %v", n, len(rest), err)
	}
}

func TestKeyDecodeErrors(t *testing.T) {
	if _, _, err := TakeUint64([]byte{1, 2, 3}); err == nil {
		t.Fatal("TakeUint64 accepted a short buffer")
	}
	if _, _, err := TakeString([]byte("abc")); err == nil {
		t.Fatal("TakeString accepted an unterminated buffer")
	}
	if _, _, err := TakeString([]byte{'a', 0x00, 0x07}); err == nil {
		t.Fatal("TakeString accepted a bad escape")
	}
	if _, _, err := TakeString([]byte{'a', 0x00}); err == nil {
		t.Fatal("TakeString accepted a truncated escape")
	}
}

func TestPrefixEnd(t *testing.T) {
	cases := []struct {
		in   []byte
		want []byte
	}{
		{[]byte("abc"), []byte("abd")},
		{[]byte{0x01, 0xFF}, []byte{0x02}},
		{[]byte{0xFF, 0xFF}, nil},
		{[]byte{}, nil},
	}
	for _, c := range cases {
		got := PrefixEnd(c.in)
		if !bytes.Equal(got, c.want) {
			t.Fatalf("PrefixEnd(%x) = %x, want %x", c.in, got, c.want)
		}
	}
	// Property: prefix <= any extension < PrefixEnd(prefix).
	f := func(prefix, suffix []byte) bool {
		if len(prefix) == 0 {
			return true
		}
		end := PrefixEnd(prefix)
		ext := append(append([]byte(nil), prefix...), suffix...)
		if bytes.Compare(prefix, ext) > 0 {
			return false
		}
		if end == nil {
			return true
		}
		return bytes.Compare(ext, end) < 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
