package storedb

import (
	"context"
	"errors"
	"testing"
	"time"
)

// TestSuperviseReopenRecovers drives the daemon's storage supervisor
// through a failure: a transient WAL fsync fault trips the sticky
// state, the supervisor notices and reopens, and writes come back
// without any outside intervention.
func TestSuperviseReopenRecovers(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), SyncWrites: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if err := putKey(db, "good"); err != nil {
		t.Fatal(err)
	}

	plan := NewFaultPlan(1, &FaultRule{Op: FaultSync, Label: "wal", Count: 1, Err: ErrInjectedIO})
	plan.Install()
	err = putKey(db, "bad")
	UninstallFaults()
	if !errors.Is(err, ErrStorageFailed) {
		t.Fatalf("faulted write err = %v, want ErrStorageFailed", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go SuperviseReopen(ctx, db, 5*time.Millisecond, t.Logf)

	deadline := time.Now().Add(5 * time.Second)
	for db.Health().Failed && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	if h := db.Health(); h.Failed {
		t.Fatalf("supervisor never recovered: %+v", h)
	}
	if err := putKey(db, "after"); err != nil {
		t.Fatalf("write after supervised reopen: %v", err)
	}
	mustHave(t, db, "good", true)
	mustHave(t, db, "bad", false)
	mustHave(t, db, "after", true)
}
