package storedb

import "bytes"

// The in-memory index is an immutable (copy-on-write) B+tree. Mutating
// operations return a new tree sharing unchanged nodes with the old one,
// which gives readers cheap, consistent snapshots while a single writer
// advances the database: a committed transaction atomically publishes its
// root and in-flight readers keep iterating over the root they started
// with.
//
// Leaves hold key/value pairs; internal nodes hold router keys such that
// every key under children[i] is < keys[i] and >= keys[i-1]. Router keys
// do not need to exist in any leaf, only to separate subtrees, which keeps
// deletion rebalancing local.

const (
	maxLeafItems = 32
	minLeafItems = maxLeafItems / 2
	maxChildren  = 32
	minChildren  = maxChildren / 2
)

type node struct {
	leaf     bool
	keys     [][]byte
	vals     [][]byte // leaves only; vals[i] belongs to keys[i]
	children []*node  // internal only; len(children) == len(keys)+1
}

// tree is an immutable B+tree. The zero value is an empty tree.
type tree struct {
	root *node
	size int
}

// fill returns the quantity the min/max constraints apply to: items for
// leaves, children for internal nodes.
func (n *node) fill() int {
	if n.leaf {
		return len(n.keys)
	}
	return len(n.children)
}

func (n *node) clone() *node {
	c := &node{leaf: n.leaf}
	c.keys = append([][]byte(nil), n.keys...)
	if n.leaf {
		c.vals = append([][]byte(nil), n.vals...)
	} else {
		c.children = append([]*node(nil), n.children...)
	}
	return c
}

// search returns the index of the first key in n.keys that is >= key,
// and whether it is an exact match.
func (n *node) search(key []byte) (int, bool) {
	lo, hi := 0, len(n.keys)
	for lo < hi {
		mid := (lo + hi) / 2
		if bytes.Compare(n.keys[mid], key) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	exact := lo < len(n.keys) && bytes.Equal(n.keys[lo], key)
	return lo, exact
}

// childIndex returns the child to descend into when looking for key:
// the first i such that key < keys[i], i.e. children[i].
func (n *node) childIndex(key []byte) int {
	i, exact := n.search(key)
	if exact {
		return i + 1 // routers separate: keys[i] <= subtree(children[i+1])
	}
	return i
}

func (t tree) Len() int { return t.size }

// Get returns the value stored under key and whether it was present.
// The returned slice must not be modified by the caller.
func (t tree) Get(key []byte) ([]byte, bool) {
	n := t.root
	for n != nil {
		if n.leaf {
			i, exact := n.search(key)
			if !exact {
				return nil, false
			}
			return n.vals[i], true
		}
		n = n.children[n.childIndex(key)]
	}
	return nil, false
}

// Put returns a tree with key set to val. Key and val are stored as-is;
// callers that retain their buffers must copy first.
func (t tree) Put(key, val []byte) tree {
	if t.root == nil {
		return tree{
			root: &node{leaf: true, keys: [][]byte{key}, vals: [][]byte{val}},
			size: 1,
		}
	}
	left, right, sep, added := t.root.put(key, val)
	root := left
	if right != nil {
		root = &node{
			keys:     [][]byte{sep},
			children: []*node{left, right},
		}
	}
	size := t.size
	if added {
		size++
	}
	return tree{root: root, size: size}
}

// put inserts into a copy of n. It returns the new node, plus a right
// sibling and separator when the node split, and whether the key was new.
func (n *node) put(key, val []byte) (left, right *node, sep []byte, added bool) {
	c := n.clone()
	if c.leaf {
		i, exact := c.search(key)
		if exact {
			c.vals[i] = val
			return c, nil, nil, false
		}
		c.keys = insertBytes(c.keys, i, key)
		c.vals = insertBytes(c.vals, i, val)
		added = true
		if len(c.keys) > maxLeafItems {
			mid := len(c.keys) / 2
			r := &node{
				leaf: true,
				keys: append([][]byte(nil), c.keys[mid:]...),
				vals: append([][]byte(nil), c.vals[mid:]...),
			}
			c.keys = c.keys[:mid:mid]
			c.vals = c.vals[:mid:mid]
			return c, r, r.keys[0], added
		}
		return c, nil, nil, added
	}

	i := c.childIndex(key)
	nl, nr, nsep, add := c.children[i].put(key, val)
	added = add
	c.children[i] = nl
	if nr != nil {
		c.keys = insertBytes(c.keys, i, nsep)
		c.children = insertNodes(c.children, i+1, nr)
		if len(c.children) > maxChildren {
			mid := len(c.keys) / 2
			upSep := c.keys[mid]
			r := &node{
				keys:     append([][]byte(nil), c.keys[mid+1:]...),
				children: append([]*node(nil), c.children[mid+1:]...),
			}
			c.keys = c.keys[:mid:mid]
			c.children = c.children[: mid+1 : mid+1]
			return c, r, upSep, added
		}
	}
	return c, nil, nil, added
}

// Delete returns a tree without key, and whether the key was present.
func (t tree) Delete(key []byte) (tree, bool) {
	if t.root == nil {
		return t, false
	}
	root, found := t.root.del(key)
	if !found {
		return t, false
	}
	// Collapse trivial roots.
	for root != nil && !root.leaf && len(root.children) == 1 {
		root = root.children[0]
	}
	if root != nil && root.leaf && len(root.keys) == 0 {
		root = nil
	}
	return tree{root: root, size: t.size - 1}, true
}

// del removes key from a copy of n, rebalancing children that underflow.
// The returned node may itself be under-full; the caller fixes that.
func (n *node) del(key []byte) (*node, bool) {
	if n.leaf {
		i, exact := n.search(key)
		if !exact {
			return n, false
		}
		c := n.clone()
		c.keys = removeBytes(c.keys, i)
		c.vals = removeBytes(c.vals, i)
		return c, true
	}
	i := n.childIndex(key)
	child, found := n.children[i].del(key)
	if !found {
		return n, false
	}
	c := n.clone()
	c.children[i] = child
	c.fixChild(i)
	return c, true
}

// fixChild rebalances children[i] of an (already cloned) internal node if
// it underflows, by borrowing from or merging with an adjacent sibling.
func (n *node) fixChild(i int) {
	child := n.children[i]
	minFill := minChildren
	if child.leaf {
		minFill = minLeafItems
	}
	if child.fill() >= minFill {
		return
	}
	if i > 0 && n.children[i-1].fill() > minFill {
		n.borrowLeft(i)
		return
	}
	if i < len(n.children)-1 && n.children[i+1].fill() > minFill {
		n.borrowRight(i)
		return
	}
	if i > 0 {
		n.merge(i - 1)
	} else {
		n.merge(i)
	}
}

// borrowLeft moves the last item/subtree of children[i-1] into children[i].
func (n *node) borrowLeft(i int) {
	left := n.children[i-1].clone()
	child := n.children[i].clone()
	if child.leaf {
		last := len(left.keys) - 1
		child.keys = insertBytes(child.keys, 0, left.keys[last])
		child.vals = insertBytes(child.vals, 0, left.vals[last])
		left.keys = left.keys[:last:last]
		left.vals = left.vals[:last:last]
		n.keys[i-1] = child.keys[0]
	} else {
		lastK := len(left.keys) - 1
		lastC := len(left.children) - 1
		// Pull the parent separator down as the child's first router and
		// push the left sibling's boundary router up.
		child.keys = insertBytes(child.keys, 0, n.keys[i-1])
		child.children = insertNodes(child.children, 0, left.children[lastC])
		n.keys[i-1] = left.keys[lastK]
		left.keys = left.keys[:lastK:lastK]
		left.children = left.children[:lastC:lastC]
	}
	n.children[i-1] = left
	n.children[i] = child
}

// borrowRight moves the first item/subtree of children[i+1] into children[i].
func (n *node) borrowRight(i int) {
	child := n.children[i].clone()
	right := n.children[i+1].clone()
	if child.leaf {
		child.keys = append(child.keys, right.keys[0])
		child.vals = append(child.vals, right.vals[0])
		right.keys = removeBytes(right.keys, 0)
		right.vals = removeBytes(right.vals, 0)
		n.keys[i] = right.keys[0]
	} else {
		child.keys = append(child.keys, n.keys[i])
		child.children = append(child.children, right.children[0])
		n.keys[i] = right.keys[0]
		right.keys = removeBytes(right.keys, 0)
		right.children = removeNodes(right.children, 0)
	}
	n.children[i] = child
	n.children[i+1] = right
}

// merge combines children[i] and children[i+1] into one node.
func (n *node) merge(i int) {
	left := n.children[i].clone()
	right := n.children[i+1]
	if left.leaf {
		left.keys = append(left.keys, right.keys...)
		left.vals = append(left.vals, right.vals...)
	} else {
		left.keys = append(left.keys, n.keys[i])
		left.keys = append(left.keys, right.keys...)
		left.children = append(left.children, right.children...)
	}
	n.keys = removeBytes(n.keys, i)
	n.children = removeNodes(n.children, i+1)
	n.children[i] = left
}

// Ascend calls fn for every key/value pair with lo <= key < hi, in key
// order. A nil lo means from the start; a nil hi means to the end.
// Iteration stops early when fn returns false.
func (t tree) Ascend(lo, hi []byte, fn func(k, v []byte) bool) {
	if t.root != nil {
		t.root.ascend(lo, hi, fn)
	}
}

func (n *node) ascend(lo, hi []byte, fn func(k, v []byte) bool) bool {
	if n.leaf {
		start := 0
		if lo != nil {
			start, _ = n.search(lo)
		}
		for i := start; i < len(n.keys); i++ {
			if hi != nil && bytes.Compare(n.keys[i], hi) >= 0 {
				return false
			}
			if !fn(n.keys[i], n.vals[i]) {
				return false
			}
		}
		return true
	}
	start := 0
	if lo != nil {
		start = n.childIndex(lo)
	}
	for i := start; i < len(n.children); i++ {
		// Prune subtrees entirely at or above hi.
		if hi != nil && i > 0 && bytes.Compare(n.keys[i-1], hi) >= 0 {
			return false
		}
		cLo := lo
		if i > start {
			cLo = nil // only the first visited child needs the lower bound
		}
		if !n.children[i].ascend(cLo, hi, fn) {
			return false
		}
	}
	return true
}

// depth returns the height of the tree (0 for empty); used in tests.
func (t tree) depth() int {
	d := 0
	for n := t.root; n != nil; {
		d++
		if n.leaf {
			break
		}
		n = n.children[0]
	}
	return d
}

func insertBytes(s [][]byte, i int, v []byte) [][]byte {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeBytes(s [][]byte, i int) [][]byte {
	out := make([][]byte, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}

func insertNodes(s []*node, i int, v *node) []*node {
	s = append(s, nil)
	copy(s[i+1:], s[i:])
	s[i] = v
	return s
}

func removeNodes(s []*node, i int) []*node {
	out := make([]*node, 0, len(s)-1)
	out = append(out, s[:i]...)
	return append(out, s[i+1:]...)
}
