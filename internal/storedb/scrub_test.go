package storedb

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"
	"time"
)

// Byte offsets into a v3 snapshot file. Layout: 8 bytes magic, 4 bytes
// version, then the header block (4 length + 4 CRC + 24 payload), then
// bucket blocks.
const (
	snapHeaderPayloadOff = 12 + 8
	snapFirstBlockOff    = snapHeaderPayloadOff + snapshotHeaderLen + 8
)

// scrubTestDB opens a durable store, commits keys on both sides of a
// compaction, and returns it: the snapshot holds pre-* keys, the WAL
// holds three post-* frames past the anchor.
func scrubTestDB(t *testing.T, dir string) *DB {
	t.Helper()
	db, err := Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1, ReplLogBuffer: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := putKey(db, fmt.Sprintf("pre-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := putKey(db, fmt.Sprintf("post-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// TestScrubCleanPass checks that a scrub over an intact store verifies
// every unit and reports clean.
func TestScrubCleanPass(t *testing.T) {
	dir := t.TempDir()
	db := scrubTestDB(t, dir)
	defer db.Close()

	rep, err := db.Scrub(context.Background())
	if err != nil {
		t.Fatalf("scrub: %v", err)
	}
	if !rep.Clean || rep.Unit != "" {
		t.Fatalf("scrub report = %+v, want clean", rep)
	}
	if rep.SnapshotBlocks < 2 {
		t.Errorf("SnapshotBlocks = %d, want header + at least one bucket block", rep.SnapshotBlocks)
	}
	if rep.WALFrames != 3 {
		t.Errorf("WALFrames = %d, want 3", rep.WALFrames)
	}
	h := db.Health()
	if h.Corrupt || h.ScrubRuns == 0 || h.ScrubBlocks == 0 || h.LastScrubUnix == 0 {
		t.Errorf("health after clean scrub = %+v", h)
	}
}

// TestScrubDetectsBitFlip is the detection matrix of satellite (d): one
// silent bit flip in each checksummed unit class — snapshot header,
// snapshot bucket block, WAL frame body — must be named by the next
// scrub, move the store to the sticky corrupt state, and leave reads
// serving while writes and Reopen are refused.
func TestScrubDetectsBitFlip(t *testing.T) {
	cases := []struct {
		name string
		unit string
		flip func(t *testing.T, dir string)
	}{
		{"snapshot-header", UnitSnapshotHeader, func(t *testing.T, dir string) {
			t.Helper()
			if err := FlipFileBit(filepath.Join(dir, "SNAPSHOT"), (snapHeaderPayloadOff+1)*8); err != nil {
				t.Fatal(err)
			}
		}},
		{"snapshot-block", UnitSnapshotBlock, func(t *testing.T, dir string) {
			t.Helper()
			if err := FlipFileBit(filepath.Join(dir, "SNAPSHOT"), (snapFirstBlockOff+1)*8); err != nil {
				t.Fatal(err)
			}
		}},
		{"wal-frame", UnitWALFrame, func(t *testing.T, dir string) {
			t.Helper()
			// First frame past the anchor, one byte into its payload.
			if err := FlipFileBit(filepath.Join(dir, "WAL"), (walHeaderSize+1)*8); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			db := scrubTestDB(t, dir)
			defer db.Close()

			if rep, err := db.Scrub(context.Background()); err != nil || !rep.Clean {
				t.Fatalf("baseline scrub: %+v, %v", rep, err)
			}

			tc.flip(t, dir)

			rep, err := db.Scrub(context.Background())
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("scrub after flip: err = %v, want ErrCorrupt", err)
			}
			if rep.Clean || rep.Unit != tc.unit {
				t.Fatalf("scrub report = %+v, want unit %q", rep, tc.unit)
			}

			h := db.Health()
			if !h.Corrupt || h.CorruptUnit != tc.unit || h.Corruptions == 0 {
				t.Fatalf("health = Corrupt=%v Unit=%q Corruptions=%d, want corrupt unit %q",
					h.Corrupt, h.CorruptUnit, h.Corruptions, tc.unit)
			}
			if h.CorruptCause == "" {
				t.Error("CorruptCause empty")
			}

			// Reads keep serving the in-memory tree.
			mustHave(t, db, "pre-00", true)
			mustHave(t, db, "post-02", true)

			// Writes are refused with the distinct sticky error, not the
			// generic failed one.
			if err := putKey(db, "rejected"); !errors.Is(err, ErrStorageCorrupt) {
				t.Fatalf("write on corrupt store: %v, want ErrStorageCorrupt", err)
			}

			// Reopen cannot clear corrupt: damaged bytes stay damaged.
			if err := db.Reopen(); !errors.Is(err, ErrStorageCorrupt) {
				t.Fatalf("reopen on corrupt store: %v, want ErrStorageCorrupt", err)
			}

			// Restore without quarantine would overwrite the evidence.
			if _, err := db.RestoreSnapshotFrom(bytes.NewReader(nil)); !errors.Is(err, ErrQuarantineRequired) {
				t.Fatalf("restore before quarantine: %v, want ErrQuarantineRequired", err)
			}
		})
	}
}

// TestQuarantineThenRestoreRecovers walks the full repair path a
// replication.Repairer drives: scrub finds the flip, quarantine moves
// the damaged files aside (never deletes them), restore installs a
// verified snapshot stream, and the store is writable again — cold
// restart included.
func TestQuarantineThenRestoreRecovers(t *testing.T) {
	dir := t.TempDir()
	db := scrubTestDB(t, dir)
	defer db.Close()

	if err := FlipFileBit(filepath.Join(dir, "SNAPSHOT"), (snapFirstBlockOff+1)*8); err != nil {
		t.Fatal(err)
	}
	if _, err := db.Scrub(context.Background()); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("scrub: %v", err)
	}

	// A healthy source with the full history the corrupt store acked —
	// in production this is a replica that replayed every batch.
	src, err := Open(Options{Dir: t.TempDir(), SyncWrites: true, CompactEvery: -1, ReplLogBuffer: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 8; i++ {
		if err := putKey(src, fmt.Sprintf("pre-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := putKey(src, fmt.Sprintf("post-%02d", i)); err != nil {
			t.Fatal(err)
		}
	}
	var stream bytes.Buffer
	wantSeq, err := src.WriteSnapshotTo(&stream)
	if err != nil {
		t.Fatal(err)
	}

	qdir, err := db.QuarantineCorrupt()
	if err != nil {
		t.Fatalf("quarantine: %v", err)
	}
	// The evidence moved, it did not vanish.
	for _, name := range []string{"SNAPSHOT", "WAL"} {
		if _, err := os.Stat(filepath.Join(qdir, name)); err != nil {
			t.Errorf("quarantined %s: %v", name, err)
		}
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("%s still in data dir after quarantine (err=%v)", name, err)
		}
	}

	gotSeq, err := db.RestoreSnapshotFrom(bytes.NewReader(stream.Bytes()))
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if gotSeq != wantSeq {
		t.Fatalf("restored seq = %d, want %d", gotSeq, wantSeq)
	}
	if h := db.Health(); h.Corrupt || h.Failed {
		t.Fatalf("health after restore = %+v, want healthy", h)
	}
	mustHave(t, db, "pre-00", true)
	mustHave(t, db, "post-02", true)
	if err := putKey(db, "after-repair"); err != nil {
		t.Fatalf("write after repair: %v", err)
	}

	// The repaired state survives a cold restart.
	db.Close()
	db2, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatalf("cold reopen: %v", err)
	}
	defer db2.Close()
	mustHave(t, db2, "pre-00", true)
	mustHave(t, db2, "post-02", true)
	mustHave(t, db2, "after-repair", true)
	if db2.Seq() != wantSeq+1 {
		t.Fatalf("seq after restart = %d, want %d", db2.Seq(), wantSeq+1)
	}
}

// TestQuarantineRefusesHealthyStore guards the evidence path: only a
// provably corrupt store may be quarantined.
func TestQuarantineRefusesHealthyStore(t *testing.T) {
	db, err := Open(Options{Dir: t.TempDir(), SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.QuarantineCorrupt(); err == nil {
		t.Fatal("quarantine of a healthy store succeeded")
	}
}

// TestOpenRemovesOrphanTemps checks satellite (b): a crash between
// snapshot write and rename leaves SNAPSHOT.tmp (and possibly WAL.swap)
// behind; the next Open must clean them up so they are never confused
// with live state.
func TestOpenRemovesOrphanTemps(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	if err := putKey(db, "live"); err != nil {
		t.Fatal(err)
	}
	db.Close()

	for _, name := range []string{"SNAPSHOT.tmp", "WAL.swap"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("orphan"), 0o600); err != nil {
			t.Fatal(err)
		}
	}

	db2, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatalf("open with orphans: %v", err)
	}
	defer db2.Close()
	for _, name := range []string{"SNAPSHOT.tmp", "WAL.swap"} {
		if _, err := os.Stat(filepath.Join(dir, name)); !os.IsNotExist(err) {
			t.Errorf("orphan %s survived Open (err=%v)", name, err)
		}
	}
	mustHave(t, db2, "live", true)
}

// TestScrubberLoopFindsCorruption checks the Options.ScrubEvery wiring:
// the background scrubber notices at-rest damage without any caller
// invoking Scrub.
func TestScrubberLoopFindsCorruption(t *testing.T) {
	dir := t.TempDir()
	db := scrubTestDB(t, dir)
	db.Close()

	db2, err := Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1, ScrubEvery: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	// Damage the snapshot at rest while the store is live: its block
	// checksums are absolute, so the next scrubber tick must flag it.
	if err := FlipFileBit(filepath.Join(dir, "SNAPSHOT"), (snapFirstBlockOff+1)*8); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for !db2.Corrupt() {
		if time.Now().After(deadline) {
			t.Fatal("background scrubber never flagged the corrupt snapshot")
		}
		time.Sleep(time.Millisecond)
	}
	if h := db2.Health(); h.CorruptUnit != UnitSnapshotBlock {
		t.Fatalf("CorruptUnit = %q, want %q", h.CorruptUnit, UnitSnapshotBlock)
	}
}
