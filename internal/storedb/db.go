// Package storedb implements the embedded, transactional key-value store
// that backs the reputation server's database.
//
// The design is a single-writer, multi-reader store built from three
// pieces:
//
//   - an immutable copy-on-write B+tree as the in-memory index, giving
//     read transactions free snapshot isolation;
//   - a write-ahead log of framed, checksummed batches for durability;
//   - periodic snapshot files that allow the log to be truncated and
//     bound recovery time.
//
// Write transactions (Update) stage their changes against a shared
// copy-on-write staging root under a short mutex, then commit through a
// group-commit pipeline: concurrent committers join an open commit
// group, one of them becomes the leader, and a single WAL write plus a
// single fsync makes the whole group durable before every member is
// released. Read transactions (View) pin whatever root was last made
// durable and never block.
//
// Storage failures are fail-safe: any WAL append, fsync, or compaction
// error moves the database into a sticky failed state in which every
// write returns ErrStorageFailed while reads keep serving the last
// committed tree. Reopen replays and verifies the durable state and is
// the only way back to writable. Silent corruption — bytes that read
// back cleanly but fail a checksum — is a separate sticky state:
// every snapshot block and WAL frame is CRC-checked on read, an online
// scrubber (Options.ScrubEvery, Scrub) verifies them proactively, and a
// mismatch moves the database to ErrStorageCorrupt, from which the only
// way back is QuarantineCorrupt plus RestoreSnapshotFrom with a healthy
// replacement (replication.Repairer drives that from a replica).
//
// Automatic compaction runs on a background goroutine: commits only
// signal the compactor, so the fsync-heavy snapshot write never stalls
// the group-commit pipeline. The compactor snapshots outside commitMu
// and swaps the WAL tail under it in a brief second phase.
//
// Keys live in named buckets; a bucket is a key prefix managed by the
// store so that independently-developed tables cannot collide.
package storedb

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Options configures Open.
type Options struct {
	// Dir is the directory holding the snapshot and WAL files. It is
	// created if missing. An empty Dir opens a purely in-memory store
	// with no durability, which simulations and tests use.
	Dir string

	// SyncWrites makes every commit fsync the WAL before returning.
	// When false the OS decides when log pages reach disk; a machine
	// crash may lose the most recent commits but never corrupts the
	// store.
	SyncWrites bool

	// CompactEvery triggers an automatic snapshot + log truncation after
	// this many committed batches. Zero selects a default; negative
	// disables automatic compaction.
	CompactEvery int

	// ReplLogBuffer sizes the in-memory ring of recent committed batches
	// kept for replication tailing (Since). Zero selects a default;
	// negative disables the ring, forcing Since onto the on-disk WAL.
	ReplLogBuffer int

	// NoGroupCommit disables cross-transaction fsync batching: every
	// commit appends and syncs its own WAL frame alone, as the write
	// path did before group commit. Kept as the measured baseline for
	// experiment E21 and as an operational escape hatch.
	NoGroupCommit bool

	// CompactOnCommit runs automatic compaction inline on the commit
	// path under commitMu, as the store did before the background
	// compactor. Kept as the measured baseline for experiment E25 and
	// as an operational escape hatch; the default (false) hands
	// auto-compaction to a dedicated goroutine that commits only
	// signal.
	CompactOnCommit bool

	// CompactPace rate-limits the background compactor: after each
	// compaction it sleeps at least this long before honoring the next
	// signal, bounding the snapshot-write I/O the compactor can add.
	// Zero means no pacing.
	CompactPace time.Duration

	// ScrubEvery starts an online scrubber goroutine that verifies
	// every snapshot block checksum and the WAL history digest chain at
	// this interval. Zero disables background scrubbing; Scrub remains
	// available for on-demand passes.
	ScrubEvery time.Duration
}

const (
	defaultCompactEvery  = 4096
	defaultReplLogBuffer = 1024
)

// DB is an embedded key-value database. It is safe for concurrent use.
//
// Lock order: compactMu before commitMu before writeMu, never the
// reverse. Staging (running a transaction's fn, joining a commit group)
// takes writeMu alone; flushing a group to the WAL, publishing, and
// recovery take commitMu and may briefly nest writeMu inside it.
// Maintenance that rewrites whole files — compaction, scrub-and-repair,
// restore, tail truncation — serializes on compactMu first, so the
// background compactor and an operator-invoked Compact or Scrub never
// interleave their multi-step file rewrites.
type DB struct {
	opts Options

	current atomic.Pointer[tree] // durable root, swapped on group flush

	writeMu   sync.Mutex // guards staging: staged, stageSeq, openGroup
	staged    tree       // root including staged-but-not-yet-durable batches
	stageSeq  uint64     // sequence of the newest staged batch
	openGroup *commitGroup

	commitMu sync.Mutex // guards wal, pending, publication, compaction
	wal      *walWriter
	pending  int // batches since last compaction

	// compactMu serializes whole-file maintenance: background and
	// manual compaction, scrub, restore, quarantine, tail truncation.
	// It is taken before commitMu and held across both compaction
	// phases, so the expensive snapshot write happens with commits
	// still flowing.
	compactMu sync.Mutex

	// walMutGen is a seqlock generation for the WAL file set: odd while
	// a maintenance path is mutating WAL files (reset, tail swap,
	// truncate), bumped even when done. Lock-free readers that scan the
	// WAL (Since fallback, scrub) read it before and after: a stable
	// even value proves the scan saw a quiescent file, so a short or
	// failed scan is evidence of corruption rather than of racing a
	// swap.
	walMutGen atomic.Uint64

	compactKick chan struct{}  // signaled (non-blocking) when pending crosses the threshold
	bgStop      chan struct{}  // closed by Close to stop background goroutines
	bg          sync.WaitGroup // compactor + scrubber goroutines

	seq     atomic.Uint64 // last durable batch sequence
	snapSeq atomic.Uint64 // sequence covered by the newest snapshot

	epoch       atomic.Uint64 // promotion epoch contained in committed history
	fenced      atomic.Bool   // sticky: a higher epoch was observed; writes refused
	chainDigest atomic.Uint64 // history digest at chainSeq
	snapDigest  atomic.Uint64 // history digest anchored at snapSeq

	replicaMode atomic.Bool // writes refused; changes arrive via ApplyBatch

	failed  atomic.Bool // sticky storage failure; writes refused until Reopen
	failMu  sync.Mutex  // guards failure
	failure error       // first cause of the failed state

	corrupt      atomic.Bool // sticky checksum corruption; writes refused until repaired
	corruptMu    sync.Mutex  // guards corruptCause, corruptUnit, quarantined
	corruptCause error       // first checksum mismatch that moved the store to corrupt
	corruptUnit  string      // unit that failed: UnitSnapshotHeader, UnitSnapshotBlock, UnitWALFrame
	quarantined  bool        // corrupt files moved aside; RestoreSnapshotFrom may proceed

	compactions atomic.Uint64 // snapshot+truncate cycles completed
	scrubRuns   atomic.Uint64 // scrub passes completed (clean or not)
	scrubBlocks atomic.Uint64 // blocks whose checksums scrub has verified, cumulative
	corruptions atomic.Uint64 // checksum mismatches detected (scrub or read path)
	lastScrub   atomic.Int64  // unix seconds of the last completed scrub pass

	updates  atomic.Uint64 // committed local Update transactions
	attempts atomic.Uint64 // Update transactions begun (write-lock acquisitions)

	walGroups  atomic.Uint64 // commit groups flushed
	walBatches atomic.Uint64 // batches flushed across all groups
	walFsyncs  atomic.Uint64 // WAL fsyncs issued
	walBytes   atomic.Uint64 // bytes appended durably to the WAL
	reopens    atomic.Uint64 // successful Reopen recoveries

	replMu   sync.Mutex // guards recent, commitC, chainSeq
	recent   *batchRing // tail of committed batches for replication
	commitC  chan struct{}
	chainSeq uint64 // sequence the chain digest is at (== seq once commits settle)

	applyMu   sync.Mutex // guards applyHook
	applyHook func(Batch)

	closed atomic.Bool
}

// commitGroup collects the batches of concurrent Update callers so one
// WAL write and one fsync can cover them all. The caller that creates
// the group is its leader: it flushes the group under commitMu while
// later committers keep staging the next group. Waiters block on done
// and read err after it closes.
type commitGroup struct {
	batches  []walBatch
	lastTree tree   // staging root after the newest member
	lastSeq  uint64 // sequence of the newest member
	flushed  bool   // guarded by commitMu
	err      error  // set before done closes
	done     chan struct{}
}

// Open opens or creates a database per the options. On disk, recovery
// loads the newest snapshot and replays WAL batches with later sequence
// numbers; a torn log tail is discarded.
func Open(opts Options) (*DB, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = defaultCompactEvery
	}
	if opts.ReplLogBuffer == 0 {
		opts.ReplLogBuffer = defaultReplLogBuffer
	}
	db := &DB{opts: opts}
	if opts.ReplLogBuffer > 0 {
		db.recent = newBatchRing(opts.ReplLogBuffer)
	}
	t := tree{}

	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o700); err != nil {
			return nil, fmt.Errorf("storedb: create dir: %w", err)
		}
		if err := removeOrphanTemps(opts.Dir); err != nil {
			return nil, err
		}
		snap, snapSeq, snapDigest, err := loadSnapshot(opts.Dir)
		if err != nil {
			return nil, err
		}
		t = snap
		db.seq.Store(snapSeq)
		db.snapSeq.Store(snapSeq)
		db.snapDigest.Store(snapDigest)
		digest := snapDigest
		lastSeq, err := replayWal(db.walPath(), func(b walBatch) error {
			if b.seq <= snapSeq {
				return nil // already contained in the snapshot
			}
			for _, op := range b.ops {
				switch op.op {
				case opPut:
					t = t.Put(op.key, op.val)
				case opDelete:
					t, _ = t.Delete(op.key)
				}
			}
			if db.recent != nil {
				db.recent.push(exportBatch(b), digest)
			}
			digest = chainStep(digest, b.encode())
			return nil
		})
		if err != nil {
			return nil, err
		}
		if lastSeq > db.seq.Load() {
			db.seq.Store(lastSeq)
		}
		db.chainDigest.Store(digest)
	}

	db.current.Store(&t)
	db.staged = t
	db.stageSeq = db.seq.Load()
	db.chainSeq = db.seq.Load()
	db.epoch.Store(epochFromTree(t))
	if opts.Dir != "" {
		w, err := openWalWriter(db.walPath(), opts.SyncWrites)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}

	if opts.Dir != "" {
		db.bgStop = make(chan struct{})
		if !opts.CompactOnCommit && opts.CompactEvery > 0 {
			db.compactKick = make(chan struct{}, 1)
			db.bg.Add(1)
			go db.compactorLoop()
		}
		if opts.ScrubEvery > 0 {
			db.bg.Add(1)
			go db.scrubberLoop()
		}
	}
	return db, nil
}

// removeOrphanTemps deletes temporary files a crashed compaction left
// behind (snapshot temp, WAL swap file) and makes the removals durable.
// They are partial by construction — the crash happened before the
// rename that would have made them real — so deleting them is safe and
// keeps a dead compactor from leaking disk forever.
func removeOrphanTemps(dir string) error {
	removed := false
	for _, pat := range []string{"SNAPSHOT*.tmp", "snapshot*.tmp", "WAL.swap"} {
		matches, err := filepath.Glob(filepath.Join(dir, pat))
		if err != nil {
			return fmt.Errorf("storedb: scan temp files: %w", err)
		}
		for _, m := range matches {
			if err := os.Remove(m); err != nil && !os.IsNotExist(err) {
				return fmt.Errorf("storedb: remove orphan %s: %w", filepath.Base(m), err)
			}
			removed = true
		}
	}
	if removed {
		if err := realSyncDir(dir); err != nil {
			return fmt.Errorf("storedb: sync dir after temp cleanup: %w", err)
		}
	}
	return nil
}

func (db *DB) walPath() string  { return filepath.Join(db.opts.Dir, "WAL") }
func (db *DB) swapPath() string { return filepath.Join(db.opts.Dir, "WAL.swap") }

// Close flushes any open commit group and releases the WAL file.
// Further use of the database returns ErrClosed. Background goroutines
// (compactor, scrubber) are stopped and joined before the WAL closes,
// so no maintenance runs against released files.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	if db.bgStop != nil {
		close(db.bgStop)
		db.bg.Wait()
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Len returns the number of keys currently committed, across all buckets.
func (db *DB) Len() int { return db.current.Load().Len() }

// UpdateCount returns the number of local Update transactions that have
// committed a batch since the database was opened. Empty Updates and
// replicated ApplyBatch commits do not count. Tests use this together
// with Seq() to assert that a code path is write-free.
func (db *DB) UpdateCount() uint64 { return db.updates.Load() }

// WriteAttempts returns the number of Update transactions begun,
// committed or not. Every one serialised on the write lock, so the
// delta measures write-lock traffic even when the transaction turned
// out to be an empty no-op — the cost the lookup fast path exists to
// avoid.
func (db *DB) WriteAttempts() uint64 { return db.attempts.Load() }

// View runs fn in a read-only transaction over a consistent snapshot.
func (db *DB) View(fn func(tx *Tx) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	tx := &Tx{db: db, tree: *db.current.Load()}
	defer func() { tx.done = true }()
	return fn(tx)
}

// Update runs fn in a read-write transaction. If fn returns nil the
// transaction commits: its batch joins the open commit group, the group
// leader appends every member in one WAL write covered by one fsync,
// and the call returns once the batch is durable and published. If fn
// returns an error, nothing is changed. In-memory stores commit through
// the serialized path instead — with no log write or fsync to amortize,
// grouping is pure coordination overhead.
func (db *DB) Update(fn func(tx *Tx) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.replicaMode.Load() {
		return ErrReplica
	}
	if db.fenced.Load() {
		return ErrFenced
	}
	if db.corrupt.Load() {
		return db.corruptErr()
	}
	if db.failed.Load() {
		return db.failedErr()
	}
	if db.opts.NoGroupCommit || db.opts.Dir == "" {
		return db.updateSerialized(fn)
	}

	db.writeMu.Lock()
	if db.closed.Load() {
		db.writeMu.Unlock()
		return ErrClosed
	}
	if db.replicaMode.Load() {
		db.writeMu.Unlock()
		return ErrReplica
	}
	if db.fenced.Load() {
		db.writeMu.Unlock()
		return ErrFenced
	}
	if db.corrupt.Load() {
		db.writeMu.Unlock()
		return db.corruptErr()
	}
	if db.failed.Load() {
		db.writeMu.Unlock()
		return db.failedErr()
	}
	db.attempts.Add(1)

	// fn runs against the staging root, not the durable one, so a
	// transaction observes every earlier staged commit it may end up
	// sharing a group with.
	tx := &Tx{db: db, tree: db.staged, writable: true, seq: db.stageSeq + 1}
	if err := fn(tx); err != nil {
		tx.done = true
		db.writeMu.Unlock()
		return err
	}
	tx.done = true
	if len(tx.ops) == 0 {
		db.writeMu.Unlock()
		return nil // read-only use of an Update tx; nothing to commit
	}

	db.staged = tx.tree
	db.stageSeq = tx.seq
	g := db.openGroup
	leader := g == nil
	if leader {
		g = &commitGroup{done: make(chan struct{})}
		db.openGroup = g
	}
	g.batches = append(g.batches, walBatch{seq: tx.seq, ops: tx.ops})
	g.lastTree = tx.tree
	g.lastSeq = tx.seq
	db.writeMu.Unlock()

	if leader {
		// Pipelining: while the previous leader's fsync is in flight
		// this blocks on commitMu, and every committer arriving
		// meanwhile piles into this group.
		db.commitMu.Lock()
		db.flushGroupLocked(g)
		db.commitMu.Unlock()
	}
	<-g.done
	return g.err
}

// updateSerialized is the one-batch-per-flush write path: the
// transaction stages and flushes alone, holding commitMu from staging
// through publication, exactly as the write path worked before group
// commit. In-memory stores use it because there is no log write or
// fsync to amortize; NoGroupCommit selects it on disk as the measured
// baseline for E21. Holding commitMu across the whole commit also pins
// WAL append order to sequence order — the grouped path gets that from
// leader handoff, but independent groups racing for commitMu would not,
// and an out-of-order append reads as a torn tail on replay.
func (db *DB) updateSerialized(fn func(tx *Tx) error) error {
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.writeMu.Lock()
	if db.closed.Load() {
		db.writeMu.Unlock()
		return ErrClosed
	}
	if db.replicaMode.Load() {
		db.writeMu.Unlock()
		return ErrReplica
	}
	if db.fenced.Load() {
		db.writeMu.Unlock()
		return ErrFenced
	}
	if db.corrupt.Load() {
		db.writeMu.Unlock()
		return db.corruptErr()
	}
	if db.failed.Load() {
		db.writeMu.Unlock()
		return db.failedErr()
	}
	db.attempts.Add(1)

	tx := &Tx{db: db, tree: db.staged, writable: true, seq: db.stageSeq + 1}
	if err := fn(tx); err != nil {
		tx.done = true
		db.writeMu.Unlock()
		return err
	}
	tx.done = true
	if len(tx.ops) == 0 {
		db.writeMu.Unlock()
		return nil // read-only use of an Update tx; nothing to commit
	}

	db.staged = tx.tree
	db.stageSeq = tx.seq
	g := &commitGroup{
		batches:  []walBatch{{seq: tx.seq, ops: tx.ops}},
		lastTree: tx.tree,
		lastSeq:  tx.seq,
		done:     make(chan struct{}),
	}
	db.writeMu.Unlock()
	db.flushGroupLocked(g)
	return g.err
}

// flushGroupLocked detaches g from staging, makes its batches durable
// with a single WAL write and fsync, publishes the newest root, and
// releases the waiters. Any storage error fails the whole group and
// moves the database to the sticky failed state. Caller holds commitMu
// but not writeMu.
func (db *DB) flushGroupLocked(g *commitGroup) {
	if g.flushed {
		return // another path (drain) beat this leader to it
	}
	g.flushed = true
	db.writeMu.Lock()
	if db.openGroup == g {
		db.openGroup = nil
	}
	db.writeMu.Unlock()
	defer close(g.done)

	if db.corrupt.Load() {
		g.err = db.corruptErr()
		return
	}
	if db.failed.Load() {
		g.err = db.failedErr()
		return
	}
	if db.wal != nil {
		n, err := db.wal.appendGroup(g.batches)
		if err != nil {
			db.fail(err)
			g.err = db.failedErr()
			return
		}
		db.walBytes.Add(uint64(n))
		if db.opts.SyncWrites {
			db.walFsyncs.Add(1)
		}
	}
	db.walGroups.Add(1)
	db.walBatches.Add(uint64(len(g.batches)))

	t := g.lastTree
	db.current.Store(&t)
	db.seq.Store(g.lastSeq)
	db.updates.Add(uint64(len(g.batches)))
	for _, b := range g.batches {
		db.noteCommit(b)
	}

	db.pending += len(g.batches)
	db.maybeCompactLocked()
}

// maybeCompactLocked triggers automatic compaction once enough batches
// have accumulated. In the default configuration it only signals the
// background compactor — a non-blocking channel send, so commits never
// pay for a snapshot write. With CompactOnCommit the legacy inline
// behavior runs under commitMu and a failure is sticky. Caller holds
// commitMu.
func (db *DB) maybeCompactLocked() {
	if db.wal == nil || db.opts.CompactEvery <= 0 || db.pending < db.opts.CompactEvery {
		return
	}
	if db.opts.CompactOnCommit {
		if err := db.compactLocked(); err != nil {
			// The group is already durable and published, so its
			// members are acknowledged with nil; only the snapshot or
			// log truncation died. The log may be half-reset, so take
			// the sticky failed state rather than guessing.
			db.fail(fmt.Errorf("auto-compaction: %w", err))
		}
		return
	}
	if db.compactKick != nil {
		select {
		case db.compactKick <- struct{}{}:
		default: // a kick is already pending; the compactor will see current state
		}
	}
}

// drainOpenGroupLocked flushes (or fails) the staged-but-unflushed
// commit group, if any, so the caller sees a quiesced commit pipeline.
// Caller holds commitMu but not writeMu.
func (db *DB) drainOpenGroupLocked() {
	db.writeMu.Lock()
	g := db.openGroup
	db.writeMu.Unlock()
	if g != nil {
		db.flushGroupLocked(g)
	}
}

// fail records the first cause and moves the database into the sticky
// failed state: every subsequent write returns ErrStorageFailed until
// Reopen succeeds. Reads are unaffected.
func (db *DB) fail(cause error) {
	db.failMu.Lock()
	if db.failure == nil {
		db.failure = cause
	}
	db.failMu.Unlock()
	db.failed.Store(true)
}

// failedErr returns ErrStorageFailed annotated with the first cause.
func (db *DB) failedErr() error {
	db.failMu.Lock()
	cause := db.failure
	db.failMu.Unlock()
	if cause == nil {
		return ErrStorageFailed
	}
	return fmt.Errorf("%w: %v", ErrStorageFailed, cause)
}

// markCorrupt records the first checksum mismatch and moves the
// database into the sticky corrupt state: writes return
// ErrStorageCorrupt until the damaged files are quarantined and the
// state restored from a verified source. Reads keep serving the
// in-memory tree, which predates the corruption by construction — it
// was built from bytes that verified when they were read.
func (db *DB) markCorrupt(unit string, cause error) {
	db.corruptions.Add(1)
	db.corruptMu.Lock()
	if db.corruptCause == nil {
		db.corruptCause = cause
		db.corruptUnit = unit
	}
	db.corruptMu.Unlock()
	db.corrupt.Store(true)
}

// corruptErr returns ErrStorageCorrupt annotated with the first cause.
func (db *DB) corruptErr() error {
	db.corruptMu.Lock()
	cause := db.corruptCause
	db.corruptMu.Unlock()
	if cause == nil {
		return ErrStorageCorrupt
	}
	return fmt.Errorf("%w: %v", ErrStorageCorrupt, cause)
}

// Corrupt reports whether the database is in the sticky corrupt
// (read-only) state — a single atomic load, cheap enough for a
// per-request gate.
func (db *DB) Corrupt() bool { return db.corrupt.Load() }

// StorageHealth describes the write pipeline's state for health
// endpoints and operators.
type StorageHealth struct {
	// Failed reports the sticky failed (read-only) state.
	Failed bool
	// Cause is the first error that failed the store; empty when healthy.
	Cause string
	// Reopens counts successful Reopen recoveries.
	Reopens uint64
	// Groups counts commit groups flushed; Batches the batches they
	// carried. Batches/Groups is the mean group-commit depth.
	Groups uint64
	// Batches counts batches made durable.
	Batches uint64
	// Fsyncs counts WAL fsyncs issued; Fsyncs/Batches is the amortized
	// fsync cost per write.
	Fsyncs uint64
	// WALBytes counts bytes appended durably to the WAL since open.
	WALBytes uint64

	// Corrupt reports the sticky corrupt (read-only) state: a checksum
	// verification found durable bytes that are provably wrong.
	Corrupt bool
	// CorruptCause is the first checksum mismatch; empty when clean.
	CorruptCause string
	// CorruptUnit names what failed: "snapshot-header",
	// "snapshot-block", or "wal-frame". Empty when clean.
	CorruptUnit string
	// Compactions counts completed snapshot+truncate cycles.
	Compactions uint64
	// CompactorLag is how many committed batches the newest snapshot
	// trails the log by — the work the background compactor still owes.
	CompactorLag uint64
	// ScrubRuns counts completed scrub passes; ScrubBlocks the
	// cumulative blocks they verified.
	ScrubRuns   uint64
	ScrubBlocks uint64
	// Corruptions counts checksum mismatches detected by scrub or any
	// read path since open.
	Corruptions uint64
	// LastScrubUnix is the completion time of the newest scrub pass in
	// unix seconds; zero when no pass has completed.
	LastScrubUnix int64
}

// Failed reports whether the database is in the sticky failed
// (read-only) state — a single atomic load, cheap enough for a
// per-request gate.
func (db *DB) Failed() bool { return db.failed.Load() }

// Health returns a snapshot of the storage health counters.
func (db *DB) Health() StorageHealth {
	h := StorageHealth{
		Failed:        db.failed.Load(),
		Reopens:       db.reopens.Load(),
		Groups:        db.walGroups.Load(),
		Batches:       db.walBatches.Load(),
		Fsyncs:        db.walFsyncs.Load(),
		WALBytes:      db.walBytes.Load(),
		Corrupt:       db.corrupt.Load(),
		Compactions:   db.compactions.Load(),
		CompactorLag:  db.CompactorLag(),
		ScrubRuns:     db.scrubRuns.Load(),
		ScrubBlocks:   db.scrubBlocks.Load(),
		Corruptions:   db.corruptions.Load(),
		LastScrubUnix: db.lastScrub.Load(),
	}
	if h.Failed {
		db.failMu.Lock()
		if db.failure != nil {
			h.Cause = db.failure.Error()
		}
		db.failMu.Unlock()
	}
	if h.Corrupt {
		db.corruptMu.Lock()
		if db.corruptCause != nil {
			h.CorruptCause = db.corruptCause.Error()
		}
		h.CorruptUnit = db.corruptUnit
		db.corruptMu.Unlock()
	}
	return h
}

// CompactorLag returns how many committed batches the newest snapshot
// trails the durable log by. Pure atomics; safe from any goroutine.
func (db *DB) CompactorLag() uint64 {
	seq, snap := db.seq.Load(), db.snapSeq.Load()
	if seq <= snap {
		return 0
	}
	return seq - snap
}

// Reopen recovers a database from the sticky failed state: it closes
// the suspect WAL handle, reloads the snapshot, replays the log up to
// the last acknowledged sequence, cuts any unacknowledged tail, and
// reopens the log for appends. It verifies that every acknowledged
// batch is still durable — if the log cannot prove that, the database
// stays failed and the error says why. Reopen on a healthy database is
// a no-op.
func (db *DB) Reopen() error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.corrupt.Load() {
		// Reopen proves the log's append state; it cannot make provably
		// damaged bytes right. Only quarantine + restore clears corrupt.
		return db.corruptErr()
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if !db.failed.Load() {
		return nil
	}

	if db.wal != nil {
		_ = db.wal.close()
		db.wal = nil
	}
	durable := db.seq.Load()

	if db.opts.Dir == "" {
		// In-memory store: there is no log to repair. Resume from the
		// last published root.
		db.recoverLocked(*db.current.Load(), durable, db.snapSeq.Load(), 0,
			db.chainDigest.Load(), db.snapDigest.Load())
		return nil
	}

	snap, snapSeq, snapDigest, err := loadSnapshot(db.opts.Dir)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			// Not an append-state problem: durable bytes are provably
			// damaged, so reopening cannot recover. Switch to the
			// corrupt state and its quarantine + restore path.
			db.markCorrupt(UnitSnapshotBlock, err)
			return db.corruptErr()
		}
		return fmt.Errorf("storedb: reopen: %w", err)
	}
	t := snap
	digest := snapDigest
	last := snapSeq
	var keep int64
	replayed := 0
	_, _, err = scanWalFrames(db.walPath(), func(b walBatch, end int64) error {
		if b.seq > durable {
			return errScanDone // unacknowledged tail: cut below
		}
		if b.seq > snapSeq {
			for _, op := range b.ops {
				switch op.op {
				case opPut:
					t = t.Put(op.key, op.val)
				case opDelete:
					t, _ = t.Delete(op.key)
				}
			}
			digest = chainStep(digest, b.encode())
			replayed++
		}
		if b.seq > last {
			last = b.seq
		}
		keep = end
		return nil
	})
	if err != nil && err != errScanDone {
		return fmt.Errorf("storedb: reopen: %w", err)
	}
	if last != durable {
		return fmt.Errorf("%w: reopen recovered seq %d, acknowledged %d", ErrCorrupt, last, durable)
	}

	// Cut everything past the last acknowledged frame and make the cut
	// durable, so a batch that failed mid-append can never resurrect.
	if info, serr := os.Stat(db.walPath()); serr == nil && info.Size() > keep {
		db.walMutGen.Add(1)
		defer db.walMutGen.Add(1)
		if terr := os.Truncate(db.walPath(), keep); terr != nil {
			return fmt.Errorf("storedb: reopen truncate: %w", terr)
		}
		f, oerr := os.OpenFile(db.walPath(), os.O_WRONLY, 0)
		if oerr != nil {
			return fmt.Errorf("storedb: reopen: %w", oerr)
		}
		serr := fsSync(f, "wal")
		f.Close()
		if serr != nil {
			return fmt.Errorf("storedb: reopen sync: %w", serr)
		}
	}
	w, err := openWalWriter(db.walPath(), db.opts.SyncWrites)
	if err != nil {
		return err
	}
	// The log may have been created by the failed path without its
	// directory entry ever reaching disk; sync unconditionally so the
	// recovered log is durable whatever state the failure left behind.
	if err := fsSyncDir(db.opts.Dir); err != nil {
		_ = w.close()
		return fmt.Errorf("storedb: reopen sync dir: %w", err)
	}
	db.wal = w
	db.recoverLocked(t, durable, snapSeq, replayed, digest, snapDigest)
	return nil
}

// recoverLocked installs the verified durable state and clears the
// failed flag. The tail ring is trimmed to the recovered sequence —
// batches past it were never acknowledged and must not be served to
// replicas — and the epoch is re-read from the recovered tree. Caller
// holds commitMu and writeMu.
func (db *DB) recoverLocked(t tree, seq, snapSeq uint64, pending int, digest, snapDigest uint64) {
	db.current.Store(&t)
	db.staged = t
	db.stageSeq = seq
	db.seq.Store(seq)
	db.snapSeq.Store(snapSeq)
	db.snapDigest.Store(snapDigest)
	db.epoch.Store(epochFromTree(t))
	db.pending = pending
	db.replMu.Lock()
	if db.recent != nil {
		db.recent.truncateTo(seq)
	}
	db.chainSeq = seq
	db.chainDigest.Store(digest)
	db.replMu.Unlock()
	db.failMu.Lock()
	db.failure = nil
	db.failMu.Unlock()
	db.failed.Store(false)
	db.reopens.Add(1)
}

// Compact writes a snapshot of the current state and truncates the WAL.
func (db *DB) Compact() error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.corrupt.Load() {
		return db.corruptErr()
	}
	if db.failed.Load() {
		return db.failedErr()
	}
	if err := db.compactLocked(); err != nil {
		db.fail(err)
		return db.failedErr()
	}
	return nil
}

// compactLocked writes a snapshot covering the durable root and starts
// a fresh log. Caller holds commitMu.
func (db *DB) compactLocked() error {
	if db.opts.Dir == "" {
		return nil // in-memory store: nothing to compact
	}
	seq := db.seq.Load()
	// Under commitMu the chain digest is settled at seq, so the pair is
	// consistent; it anchors the chain for post-compaction digest lookups.
	digest := db.chainDigest.Load()
	if err := writeSnapshot(db.opts.Dir, *db.current.Load(), seq, digest); err != nil {
		return err
	}
	// The snapshot now covers every committed batch; start a fresh log.
	if err := db.resetWalLocked(); err != nil {
		return err
	}
	db.snapSeq.Store(seq)
	db.snapDigest.Store(digest)
	db.compactions.Add(1)
	return nil
}

// resetWalLocked closes and deletes the WAL and opens a fresh log.
// openWalWriter's create-time directory sync makes both namespace
// changes durable together — a crash must not resurrect batches the
// snapshot already covers. Caller holds commitMu.
func (db *DB) resetWalLocked() error {
	db.walMutGen.Add(1)
	defer db.walMutGen.Add(1)
	if db.wal != nil {
		if err := db.wal.close(); err != nil {
			return fmt.Errorf("storedb: close wal before truncate: %w", err)
		}
		db.wal = nil
	}
	if err := fsRemove(db.walPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storedb: remove wal: %w", err)
	}
	w, err := openWalWriter(db.walPath(), db.opts.SyncWrites)
	if err != nil {
		return err
	}
	db.wal = w
	db.pending = 0
	return nil
}

// Tx is a transaction. Read transactions may be used concurrently by the
// goroutine family that received them; write transactions must stay on
// one goroutine.
type Tx struct {
	db       *DB
	tree     tree
	writable bool
	done     bool
	seq      uint64 // commit sequence, fixed at staging (write tx only)
	ops      []walOp
}

// CommitSeq returns the sequence number this write transaction will
// commit as, assuming it commits any operations. Values written under
// it are strictly increasing across commits, which makes them usable as
// cheap record versions (e.g. "was this marker rewritten since I read
// it?") without a separate counter key.
func (tx *Tx) CommitSeq() uint64 {
	if tx.seq != 0 {
		return tx.seq
	}
	return tx.db.seq.Load() + 1
}

// Bucket returns a handle to the named bucket. Buckets spring into being
// on first write; reading a never-written bucket simply finds no keys.
func (tx *Tx) Bucket(name string) (*Bucket, error) {
	if name == "" || strings.ContainsRune(name, 0) {
		return nil, ErrBucketName
	}
	prefix := make([]byte, 0, len(name)+1)
	prefix = append(prefix, name...)
	prefix = append(prefix, 0)
	return &Bucket{tx: tx, prefix: prefix}, nil
}

// MustBucket is Bucket for compile-time-constant names; it panics on an
// invalid name instead of returning an error.
func (tx *Tx) MustBucket(name string) *Bucket {
	b, err := tx.Bucket(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Bucket is a named key namespace within a transaction.
type Bucket struct {
	tx     *Tx
	prefix []byte
}

func (b *Bucket) wrap(key []byte) []byte {
	k := make([]byte, 0, len(b.prefix)+len(key))
	k = append(k, b.prefix...)
	return append(k, key...)
}

// Get returns the value for key, or nil and false if absent. The returned
// slice is shared with the store and must not be modified.
func (b *Bucket) Get(key []byte) ([]byte, bool) {
	if b.tx.done {
		return nil, false
	}
	return b.tx.tree.Get(b.wrap(key))
}

// Put stores val under key. Both slices are copied.
func (b *Bucket) Put(key, val []byte) error {
	if b.tx.done {
		return ErrTxClosed
	}
	if !b.tx.writable {
		return ErrReadOnly
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	k := b.wrap(key)
	v := append([]byte(nil), val...)
	b.tx.tree = b.tx.tree.Put(k, v)
	b.tx.ops = append(b.tx.ops, walOp{op: opPut, key: k, val: v})
	return nil
}

// Delete removes key if present. Deleting an absent key is not an error.
func (b *Bucket) Delete(key []byte) error {
	if b.tx.done {
		return ErrTxClosed
	}
	if !b.tx.writable {
		return ErrReadOnly
	}
	k := b.wrap(key)
	next, found := b.tx.tree.Delete(k)
	if !found {
		return nil
	}
	b.tx.tree = next
	b.tx.ops = append(b.tx.ops, walOp{op: opDelete, key: k})
	return nil
}

// ForEach visits every key/value pair in the bucket in key order,
// stopping early if fn returns false.
func (b *Bucket) ForEach(fn func(k, v []byte) bool) {
	b.Range(nil, nil, fn)
}

// Range visits pairs with lo <= key < hi (nil bounds are open) in key
// order, stopping early if fn returns false. The key passed to fn has the
// bucket prefix stripped and is only valid during the call.
func (b *Bucket) Range(lo, hi []byte, fn func(k, v []byte) bool) {
	if b.tx.done {
		return
	}
	from := b.wrap(lo)
	var to []byte
	if hi != nil {
		to = b.wrap(hi)
	} else {
		to = PrefixEnd(b.prefix)
	}
	b.tx.tree.Ascend(from, to, func(k, v []byte) bool {
		return fn(k[len(b.prefix):], v)
	})
}

// RangePrefix visits pairs whose key starts with prefix.
func (b *Bucket) RangePrefix(prefix []byte, fn func(k, v []byte) bool) {
	hi := PrefixEnd(b.wrap(prefix))
	if hi != nil {
		hi = hi[len(b.prefix):]
	}
	b.Range(prefix, hi, fn)
}

// Count returns the number of keys in the bucket with the given prefix
// (pass nil to count the whole bucket).
func (b *Bucket) Count(prefix []byte) int {
	var n int
	if prefix == nil {
		b.ForEach(func(_, _ []byte) bool { n++; return true })
	} else {
		b.RangePrefix(prefix, func(_, _ []byte) bool { n++; return true })
	}
	return n
}
