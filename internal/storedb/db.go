// Package storedb implements the embedded, transactional key-value store
// that backs the reputation server's database.
//
// The design is a single-writer, multi-reader store built from three
// pieces:
//
//   - an immutable copy-on-write B+tree as the in-memory index, giving
//     read transactions free snapshot isolation;
//   - a write-ahead log of framed, checksummed batches for durability;
//   - periodic snapshot files that allow the log to be truncated and
//     bound recovery time.
//
// Write transactions (Update) serialise on a mutex, stage their changes
// against a private copy-on-write root, append one WAL batch on commit
// and then atomically publish the new root. Read transactions (View) pin
// whatever root was current when they began and never block.
//
// Keys live in named buckets; a bucket is a key prefix managed by the
// store so that independently-developed tables cannot collide.
package storedb

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
)

// Options configures Open.
type Options struct {
	// Dir is the directory holding the snapshot and WAL files. It is
	// created if missing. An empty Dir opens a purely in-memory store
	// with no durability, which simulations and tests use.
	Dir string

	// SyncWrites makes every commit fsync the WAL before returning.
	// When false the OS decides when log pages reach disk; a machine
	// crash may lose the most recent commits but never corrupts the
	// store.
	SyncWrites bool

	// CompactEvery triggers an automatic snapshot + log truncation after
	// this many committed batches. Zero selects a default; negative
	// disables automatic compaction.
	CompactEvery int

	// ReplLogBuffer sizes the in-memory ring of recent committed batches
	// kept for replication tailing (Since). Zero selects a default;
	// negative disables the ring, forcing Since onto the on-disk WAL.
	ReplLogBuffer int
}

const (
	defaultCompactEvery  = 4096
	defaultReplLogBuffer = 1024
)

// DB is an embedded key-value database. It is safe for concurrent use.
type DB struct {
	opts Options

	current atomic.Pointer[tree] // committed root, swapped on commit

	writeMu sync.Mutex // serialises Update transactions and compaction
	wal     *walWriter
	pending int // batches since last compaction

	seq     atomic.Uint64 // last committed batch sequence
	snapSeq atomic.Uint64 // sequence covered by the newest snapshot

	replicaMode atomic.Bool // writes refused; changes arrive via ApplyBatch

	updates  atomic.Uint64 // committed local Update transactions
	attempts atomic.Uint64 // Update transactions begun (write-lock acquisitions)

	replMu  sync.Mutex // guards recent and commitC
	recent  *batchRing // tail of committed batches for replication
	commitC chan struct{}

	applyMu   sync.Mutex // guards applyHook
	applyHook func(Batch)

	closed atomic.Bool
}

// Open opens or creates a database per the options. On disk, recovery
// loads the newest snapshot and replays WAL batches with later sequence
// numbers; a torn log tail is discarded.
func Open(opts Options) (*DB, error) {
	if opts.CompactEvery == 0 {
		opts.CompactEvery = defaultCompactEvery
	}
	if opts.ReplLogBuffer == 0 {
		opts.ReplLogBuffer = defaultReplLogBuffer
	}
	db := &DB{opts: opts}
	if opts.ReplLogBuffer > 0 {
		db.recent = newBatchRing(opts.ReplLogBuffer)
	}
	t := tree{}

	if opts.Dir != "" {
		if err := os.MkdirAll(opts.Dir, 0o700); err != nil {
			return nil, fmt.Errorf("storedb: create dir: %w", err)
		}
		snap, snapSeq, err := loadSnapshot(opts.Dir)
		if err != nil {
			return nil, err
		}
		t = snap
		db.seq.Store(snapSeq)
		db.snapSeq.Store(snapSeq)
		lastSeq, err := replayWal(db.walPath(), func(b walBatch) error {
			if b.seq <= snapSeq {
				return nil // already contained in the snapshot
			}
			for _, op := range b.ops {
				switch op.op {
				case opPut:
					t = t.Put(op.key, op.val)
				case opDelete:
					t, _ = t.Delete(op.key)
				}
			}
			if db.recent != nil {
				db.recent.push(exportBatch(b))
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
		if lastSeq > db.seq.Load() {
			db.seq.Store(lastSeq)
		}
		w, err := openWalWriter(db.walPath(), opts.SyncWrites)
		if err != nil {
			return nil, err
		}
		db.wal = w
	}

	db.current.Store(&t)
	return db, nil
}

func (db *DB) walPath() string { return filepath.Join(db.opts.Dir, "WAL") }

// Close flushes nothing (commits are already logged) and releases the
// WAL file. Further use of the database returns ErrClosed.
func (db *DB) Close() error {
	if db.closed.Swap(true) {
		return nil
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.wal != nil {
		return db.wal.close()
	}
	return nil
}

// Len returns the number of keys currently committed, across all buckets.
func (db *DB) Len() int { return db.current.Load().Len() }

// UpdateCount returns the number of local Update transactions that have
// committed a batch since the database was opened. Empty Updates and
// replicated ApplyBatch commits do not count. Tests use this together
// with Seq() to assert that a code path is write-free.
func (db *DB) UpdateCount() uint64 { return db.updates.Load() }

// WriteAttempts returns the number of Update transactions begun,
// committed or not. Every one serialised on the write lock, so the
// delta measures write-lock traffic even when the transaction turned
// out to be an empty no-op — the cost the lookup fast path exists to
// avoid.
func (db *DB) WriteAttempts() uint64 { return db.attempts.Load() }

// View runs fn in a read-only transaction over a consistent snapshot.
func (db *DB) View(fn func(tx *Tx) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	tx := &Tx{db: db, tree: *db.current.Load()}
	defer func() { tx.done = true }()
	return fn(tx)
}

// Update runs fn in a read-write transaction. If fn returns nil the
// transaction commits: its batch is appended to the WAL and the new root
// is published atomically. If fn returns an error, nothing is changed.
func (db *DB) Update(fn func(tx *Tx) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if db.replicaMode.Load() {
		return ErrReplica
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	if db.closed.Load() {
		return ErrClosed
	}
	if db.replicaMode.Load() {
		return ErrReplica
	}
	db.attempts.Add(1)

	tx := &Tx{db: db, tree: *db.current.Load(), writable: true}
	if err := fn(tx); err != nil {
		tx.done = true
		return err
	}
	tx.done = true
	if len(tx.ops) == 0 {
		return nil // read-only use of an Update tx; nothing to commit
	}

	batch := walBatch{seq: db.seq.Load() + 1, ops: tx.ops}
	if db.wal != nil {
		if err := db.wal.append(&batch); err != nil {
			return err
		}
	}
	newTree := tx.tree
	db.current.Store(&newTree)
	db.seq.Store(batch.seq)
	db.updates.Add(1)
	db.noteCommit(batch)

	db.pending++
	if db.wal != nil && db.opts.CompactEvery > 0 && db.pending >= db.opts.CompactEvery {
		if err := db.compactLocked(); err != nil {
			return fmt.Errorf("storedb: auto-compaction: %w", err)
		}
	}
	return nil
}

// Compact writes a snapshot of the current state and truncates the WAL.
func (db *DB) Compact() error {
	if db.closed.Load() {
		return ErrClosed
	}
	db.writeMu.Lock()
	defer db.writeMu.Unlock()
	return db.compactLocked()
}

func (db *DB) compactLocked() error {
	if db.opts.Dir == "" {
		return nil // in-memory store: nothing to compact
	}
	seq := db.seq.Load()
	if err := writeSnapshot(db.opts.Dir, *db.current.Load(), seq); err != nil {
		return err
	}
	// The snapshot now covers every committed batch; start a fresh log.
	if err := db.resetWalLocked(); err != nil {
		return err
	}
	db.snapSeq.Store(seq)
	return nil
}

// resetWalLocked closes and deletes the WAL, opens a fresh log, and
// syncs the directory so both namespace changes are durable — a crash
// must not resurrect batches the snapshot already covers. Caller holds
// writeMu.
func (db *DB) resetWalLocked() error {
	if db.wal != nil {
		if err := db.wal.close(); err != nil {
			return fmt.Errorf("storedb: close wal before truncate: %w", err)
		}
	}
	if err := fsRemove(db.walPath()); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("storedb: remove wal: %w", err)
	}
	w, err := openWalWriter(db.walPath(), db.opts.SyncWrites)
	if err != nil {
		return err
	}
	db.wal = w
	db.pending = 0
	if err := fsSyncDir(db.opts.Dir); err != nil {
		return fmt.Errorf("storedb: sync dir after wal truncate: %w", err)
	}
	return nil
}

// Tx is a transaction. Read transactions may be used concurrently by the
// goroutine family that received them; write transactions must stay on
// one goroutine.
type Tx struct {
	db       *DB
	tree     tree
	writable bool
	done     bool
	ops      []walOp
}

// CommitSeq returns the sequence number this write transaction will
// commit as, assuming it commits any operations. Values written under
// it are strictly increasing across commits, which makes them usable as
// cheap record versions (e.g. "was this marker rewritten since I read
// it?") without a separate counter key.
func (tx *Tx) CommitSeq() uint64 { return tx.db.seq.Load() + 1 }

// Bucket returns a handle to the named bucket. Buckets spring into being
// on first write; reading a never-written bucket simply finds no keys.
func (tx *Tx) Bucket(name string) (*Bucket, error) {
	if name == "" || strings.ContainsRune(name, 0) {
		return nil, ErrBucketName
	}
	prefix := make([]byte, 0, len(name)+1)
	prefix = append(prefix, name...)
	prefix = append(prefix, 0)
	return &Bucket{tx: tx, prefix: prefix}, nil
}

// MustBucket is Bucket for compile-time-constant names; it panics on an
// invalid name instead of returning an error.
func (tx *Tx) MustBucket(name string) *Bucket {
	b, err := tx.Bucket(name)
	if err != nil {
		panic(err)
	}
	return b
}

// Bucket is a named key namespace within a transaction.
type Bucket struct {
	tx     *Tx
	prefix []byte
}

func (b *Bucket) wrap(key []byte) []byte {
	k := make([]byte, 0, len(b.prefix)+len(key))
	k = append(k, b.prefix...)
	return append(k, key...)
}

// Get returns the value for key, or nil and false if absent. The returned
// slice is shared with the store and must not be modified.
func (b *Bucket) Get(key []byte) ([]byte, bool) {
	if b.tx.done {
		return nil, false
	}
	return b.tx.tree.Get(b.wrap(key))
}

// Put stores val under key. Both slices are copied.
func (b *Bucket) Put(key, val []byte) error {
	if b.tx.done {
		return ErrTxClosed
	}
	if !b.tx.writable {
		return ErrReadOnly
	}
	if len(key) == 0 {
		return ErrEmptyKey
	}
	k := b.wrap(key)
	v := append([]byte(nil), val...)
	b.tx.tree = b.tx.tree.Put(k, v)
	b.tx.ops = append(b.tx.ops, walOp{op: opPut, key: k, val: v})
	return nil
}

// Delete removes key if present. Deleting an absent key is not an error.
func (b *Bucket) Delete(key []byte) error {
	if b.tx.done {
		return ErrTxClosed
	}
	if !b.tx.writable {
		return ErrReadOnly
	}
	k := b.wrap(key)
	next, found := b.tx.tree.Delete(k)
	if !found {
		return nil
	}
	b.tx.tree = next
	b.tx.ops = append(b.tx.ops, walOp{op: opDelete, key: k})
	return nil
}

// ForEach visits every key/value pair in the bucket in key order,
// stopping early if fn returns false.
func (b *Bucket) ForEach(fn func(k, v []byte) bool) {
	b.Range(nil, nil, fn)
}

// Range visits pairs with lo <= key < hi (nil bounds are open) in key
// order, stopping early if fn returns false. The key passed to fn has the
// bucket prefix stripped and is only valid during the call.
func (b *Bucket) Range(lo, hi []byte, fn func(k, v []byte) bool) {
	if b.tx.done {
		return
	}
	from := b.wrap(lo)
	var to []byte
	if hi != nil {
		to = b.wrap(hi)
	} else {
		to = PrefixEnd(b.prefix)
	}
	b.tx.tree.Ascend(from, to, func(k, v []byte) bool {
		return fn(k[len(b.prefix):], v)
	})
}

// RangePrefix visits pairs whose key starts with prefix.
func (b *Bucket) RangePrefix(prefix []byte, fn func(k, v []byte) bool) {
	hi := PrefixEnd(b.wrap(prefix))
	if hi != nil {
		hi = hi[len(b.prefix):]
	}
	b.Range(prefix, hi, fn)
}

// Count returns the number of keys in the bucket with the given prefix
// (pass nil to count the whole bucket).
func (b *Bucket) Count(prefix []byte) int {
	var n int
	if prefix == nil {
		b.ForEach(func(_, _ []byte) bool { n++; return true })
	} else {
		b.RangePrefix(prefix, func(_, _ []byte) bool { n++; return true })
	}
	return n
}
