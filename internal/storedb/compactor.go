package storedb

import (
	"fmt"
	"time"
)

// Background compaction. The commit path used to write the snapshot and
// truncate the log inline under commitMu, so every CompactEvery-th
// group paid seconds of fsync-heavy snapshot I/O while the whole commit
// pipeline stalled behind it. Now flushGroupLocked only signals the
// compactor goroutine, which does the expensive work in two phases:
//
//  1. Snapshot, with no commit-path locks held: capture a settled
//     (tree, seq, digest) triple under a brief commitMu acquisition,
//     then encode and durably install the snapshot while commits keep
//     flowing. An error here is retryable — nothing was swapped — so it
//     is not sticky; the next signal tries again.
//
//  2. WAL tail swap, under commitMu: batches committed during phase 1
//     are copied to a fresh log (WAL.swap), which is synced and renamed
//     over the old one. An error here may leave the log half-swapped,
//     so it fails the store sticky exactly as inline compaction did;
//     Reopen recovers from the just-written snapshot plus whichever log
//     survived.
//
// compactMu is held across both phases so a manual Compact, a Scrub, a
// restore, or a second signal can never interleave file rewrites with a
// compaction in flight.

// compactorLoop runs until Close, compacting once per signal with an
// optional pace delay between runs.
func (db *DB) compactorLoop() {
	defer db.bg.Done()
	for {
		select {
		case <-db.bgStop:
			return
		case <-db.compactKick:
		}
		_ = db.compactOnce() // errors are sticky or retried on the next signal
		if db.opts.CompactPace > 0 {
			select {
			case <-db.bgStop:
				return
			case <-time.After(db.opts.CompactPace):
			}
		}
	}
}

// compactOnce performs one full background compaction cycle. Safe to
// call from any goroutine; no-ops when there is nothing new to cover or
// the store cannot compact (closed, failed, corrupt, in-memory).
func (db *DB) compactOnce() error {
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	if db.closed.Load() || db.failed.Load() || db.corrupt.Load() || db.opts.Dir == "" {
		return nil
	}

	// Phase 1: snapshot outside commitMu. Under the brief acquisition
	// the chain digest is settled at seq, so the captured triple is
	// consistent.
	db.commitMu.Lock()
	t := *db.current.Load()
	seq := db.seq.Load()
	digest := db.chainDigest.Load()
	db.commitMu.Unlock()
	if seq <= db.snapSeq.Load() {
		return nil // newest snapshot already covers everything durable
	}
	if err := writeSnapshot(db.opts.Dir, t, seq, digest); err != nil {
		return err // nothing swapped; retried when the next signal arrives
	}

	// Phase 2: swap the WAL tail under commitMu.
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if db.closed.Load() || db.failed.Load() || db.corrupt.Load() || db.wal == nil {
		return nil
	}
	if err := db.swapWalTailLocked(seq); err != nil {
		// The log may be half-swapped; the snapshot is already durable,
		// so Reopen recovers from it plus whichever log survived.
		db.fail(fmt.Errorf("background compaction: %w", err))
		return err
	}
	db.snapSeq.Store(seq)
	db.snapDigest.Store(digest)
	db.compactions.Add(1)
	return nil
}

// swapWalTailLocked replaces the log with one holding only the batches
// past cover — the commits that landed while the phase-1 snapshot was
// being written. The replacement is built as WAL.swap, synced, renamed
// over the log, and the directory synced, so a crash at any point
// leaves either the complete old log or the complete new one. Caller
// holds compactMu and commitMu; the snapshot covering cover is already
// durably in place.
func (db *DB) swapWalTailLocked(cover uint64) error {
	var carry []walBatch
	_, _, err := scanWal(db.walPath(), func(b walBatch) error {
		if b.seq > cover {
			carry = append(carry, b)
		}
		return nil
	})
	if err != nil {
		return fmt.Errorf("storedb: scan wal for swap: %w", err)
	}

	db.walMutGen.Add(1)
	defer db.walMutGen.Add(1)
	if err := db.wal.close(); err != nil {
		db.wal = nil
		return fmt.Errorf("storedb: close wal before swap: %w", err)
	}
	db.wal = nil

	sw, err := openWalWriter(db.swapPath(), false)
	if err != nil {
		return fmt.Errorf("storedb: create swap wal: %w", err)
	}
	if len(carry) > 0 {
		if _, err := sw.appendGroup(carry); err != nil {
			sw.close()
			return fmt.Errorf("storedb: carry batches to swap wal: %w", err)
		}
	}
	if err := sw.syncNow(); err != nil {
		sw.close()
		return fmt.Errorf("storedb: sync swap wal: %w", err)
	}
	if err := sw.close(); err != nil {
		return fmt.Errorf("storedb: close swap wal: %w", err)
	}
	if err := fsRename(db.swapPath(), db.walPath()); err != nil {
		return fmt.Errorf("storedb: install swap wal: %w", err)
	}
	if err := fsSyncDir(db.opts.Dir); err != nil {
		return fmt.Errorf("storedb: sync dir after wal swap: %w", err)
	}
	w, err := openWalWriter(db.walPath(), db.opts.SyncWrites)
	if err != nil {
		return err
	}
	db.wal = w
	db.pending = len(carry)
	return nil
}
