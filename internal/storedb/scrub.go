package storedb

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"time"
)

// Online scrub: proactively re-read every durable checksum so silent
// bit rot is found while a healthy replica still exists to repair from,
// not at the next restart. A scrub pass verifies the snapshot block by
// block (scrubSnapshotFile) and re-derives the WAL history digest chain
// frame by frame from the snapshot anchor, comparing it to the chain
// value the store acknowledged commits with. Any mismatch moves the
// store to the sticky ErrStorageCorrupt state naming the damaged unit;
// reads keep serving the in-memory tree throughout.

// Corruption units, as reported by StorageHealth.CorruptUnit and
// ScrubReport.Unit.
const (
	// UnitSnapshotHeader is the snapshot's header block (sequence,
	// digest anchor, entry count).
	UnitSnapshotHeader = "snapshot-header"
	// UnitSnapshotBlock is a snapshot bucket block carrying entries.
	UnitSnapshotBlock = "snapshot-block"
	// UnitWALFrame is a WAL frame below the acknowledged sequence.
	UnitWALFrame = "wal-frame"
)

// ScrubReport summarizes one scrub pass.
type ScrubReport struct {
	// SnapshotBlocks is the number of snapshot blocks whose checksums
	// verified this pass (header included).
	SnapshotBlocks int
	// WALFrames is the number of WAL frames verified and folded into
	// the recomputed digest chain.
	WALFrames int
	// Clean reports whether the pass found no corruption.
	Clean bool
	// Unit names the corrupt unit when !Clean: UnitSnapshotHeader,
	// UnitSnapshotBlock, or UnitWALFrame.
	Unit string
	// Detail is the corruption error text when !Clean.
	Detail string
}

// Scrub runs one full verification pass over the durable state and
// returns what it checked. On corruption the report names the unit, the
// database moves to the sticky corrupt state, and the error wraps
// ErrCorrupt. In-memory stores scrub trivially clean. Scrub serializes
// with compaction (compactMu) but never blocks commits.
func (db *DB) Scrub(ctx context.Context) (ScrubReport, error) {
	if db.closed.Load() {
		return ScrubReport{}, ErrClosed
	}
	if db.opts.Dir == "" {
		db.finishScrub()
		return ScrubReport{Clean: true}, nil
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	if db.closed.Load() {
		return ScrubReport{}, ErrClosed
	}

	rep := ScrubReport{Clean: true}

	// Snapshot blocks. The file is stable under compactMu except in
	// CompactOnCommit mode, where an inline compaction may rename a new
	// snapshot into place mid-read — the open descriptor keeps the old,
	// complete file, so checksums still verify.
	snapPath := filepath.Join(db.opts.Dir, "SNAPSHOT")
	if _, err := os.Stat(snapPath); err == nil {
		_, _, blocks, unit, serr := scrubSnapshotFile(snapPath)
		rep.SnapshotBlocks = blocks
		db.scrubBlocks.Add(uint64(blocks))
		if serr != nil {
			db.markCorrupt(unit, serr)
			rep.Clean, rep.Unit, rep.Detail = false, unit, serr.Error()
			db.finishScrub()
			return rep, serr
		}
	}
	if err := ctx.Err(); err != nil {
		return rep, err
	}

	// WAL frames and the digest chain. The scan runs without commitMu,
	// so the seqlock decides whether what it saw is evidence: a stable
	// even generation proves no maintenance path swapped or truncated
	// the log mid-scan. Frames acknowledged before the scan started are
	// fully on disk by then (the append completes before seq advances),
	// so a scan of a quiescent log that ends below them found
	// corruption, not a race.
	genBefore := db.walMutGen.Load()
	durable := db.seq.Load()
	anchorSeq := db.snapSeq.Load()
	dig := db.snapDigest.Load()
	frames := 0
	last, _, err := scanWal(db.walPath(), func(b walBatch) error {
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		if b.seq <= anchorSeq {
			return nil // predates the snapshot anchor; not part of the chain
		}
		dig = chainStep(dig, b.encode())
		frames++
		return nil
	})
	if err != nil {
		return rep, err // context cancellation or an I/O error, not a verdict
	}
	rep.WALFrames = frames
	db.scrubBlocks.Add(uint64(frames))

	stable := db.walMutGen.Load() == genBefore && genBefore%2 == 0 &&
		db.snapSeq.Load() == anchorSeq && !db.failed.Load()
	if stable {
		covered := last
		if covered < anchorSeq {
			covered = anchorSeq
		}
		if covered < durable {
			cerr := fmt.Errorf("%w: scrub: wal verifies through seq %d, acknowledged %d", ErrCorrupt, covered, durable)
			db.markCorrupt(UnitWALFrame, cerr)
			rep.Clean, rep.Unit, rep.Detail = false, UnitWALFrame, cerr.Error()
			db.finishScrub()
			return rep, cerr
		}
		if last > anchorSeq {
			if want, known := db.DigestAt(last); known && want != dig {
				cerr := fmt.Errorf("%w: scrub: wal chain digest %016x at seq %d, committed chain says %016x", ErrCorrupt, dig, last, want)
				db.markCorrupt(UnitWALFrame, cerr)
				rep.Clean, rep.Unit, rep.Detail = false, UnitWALFrame, cerr.Error()
				db.finishScrub()
				return rep, cerr
			}
		}
	}
	db.finishScrub()
	return rep, nil
}

func (db *DB) finishScrub() {
	db.scrubRuns.Add(1)
	db.lastScrub.Store(time.Now().Unix())
}

// scrubberLoop runs Scrub at Options.ScrubEvery until Close.
func (db *DB) scrubberLoop() {
	defer db.bg.Done()
	t := time.NewTicker(db.opts.ScrubEvery)
	defer t.Stop()
	for {
		select {
		case <-db.bgStop:
			return
		case <-t.C:
			_, _ = db.Scrub(context.Background())
		}
	}
}

// QuarantineCorrupt moves the corrupt store's data files (snapshot,
// WAL, any leftover temporaries) into a fresh subdirectory under
// <dir>/quarantine and returns its path. The files are preserved, never
// deleted — they are the corruption evidence and the only copy of any
// batches a repair source might not hold. After a successful
// quarantine, RestoreSnapshotFrom may rebuild the store from a verified
// stream; until then it refuses with ErrQuarantineRequired. Calling
// this on a store that is not corrupt is an error.
func (db *DB) QuarantineCorrupt() (string, error) {
	if db.closed.Load() {
		return "", ErrClosed
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	if !db.corrupt.Load() {
		return "", fmt.Errorf("storedb: quarantine: store is not corrupt")
	}
	if db.opts.Dir == "" {
		db.corruptMu.Lock()
		db.quarantined = true
		db.corruptMu.Unlock()
		return "", nil
	}

	if db.wal != nil {
		_ = db.wal.close()
		db.wal = nil
	}
	dest, err := nextQuarantineDir(db.opts.Dir)
	if err != nil {
		return "", err
	}
	db.walMutGen.Add(1)
	defer db.walMutGen.Add(1)
	moved := false
	for _, name := range []string{"SNAPSHOT", "WAL", "SNAPSHOT.tmp", "WAL.swap"} {
		src := filepath.Join(db.opts.Dir, name)
		if _, serr := os.Stat(src); serr != nil {
			continue
		}
		if rerr := os.Rename(src, filepath.Join(dest, name)); rerr != nil {
			return "", fmt.Errorf("storedb: quarantine %s: %w", name, rerr)
		}
		moved = true
	}
	if moved {
		if err := realSyncDir(dest); err != nil {
			return "", fmt.Errorf("storedb: quarantine sync: %w", err)
		}
		if err := realSyncDir(db.opts.Dir); err != nil {
			return "", fmt.Errorf("storedb: quarantine sync dir: %w", err)
		}
	}
	db.corruptMu.Lock()
	db.quarantined = true
	db.corruptMu.Unlock()
	return dest, nil
}

// nextQuarantineDir creates and returns the first unused
// quarantine/corrupt-NNN directory under dir.
func nextQuarantineDir(dir string) (string, error) {
	base := filepath.Join(dir, "quarantine")
	if err := os.MkdirAll(base, 0o700); err != nil {
		return "", fmt.Errorf("storedb: create quarantine dir: %w", err)
	}
	for i := 0; ; i++ {
		p := filepath.Join(base, fmt.Sprintf("corrupt-%03d", i))
		if _, err := os.Stat(p); os.IsNotExist(err) {
			if err := os.Mkdir(p, 0o700); err != nil {
				return "", fmt.Errorf("storedb: create quarantine dir: %w", err)
			}
			return p, nil
		}
	}
}
