package storedb

import (
	"encoding/binary"
)

// Promotion epochs. Every database carries a monotonic epoch number —
// the count of primary promotions in its history — persisted as an
// ordinary key inside the replicated keyspace, so it rides the WAL, the
// snapshot, and the replication stream with no side channel: a replica
// that catches up has, by construction, learned the epoch under which
// its history was written.
//
// BumpEpoch is the promotion barrier: it durably commits epoch+1
// (fsyncing even on stores opened without SyncWrites) before the caller
// may open the node for writes. A node that observes a higher epoch
// than its own — from a replication peer or from a client header — is
// stale: Fence moves it into a sticky read-only state analogous to
// ErrStorageFailed, closing the split-brain window in which an isolated
// old primary keeps acking writes that can never win.

// EpochBucket is the reserved bucket holding store-level metadata such
// as the promotion epoch. The leading '!' keeps it out of the
// single-letter namespace the application schema uses; application code
// must not write to it.
const EpochBucket = "!meta"

// epochKeySuffix is the key under EpochBucket holding the big-endian
// epoch value.
const epochKeySuffix = "epoch"

// epochKey returns the full tree key (bucket prefix included) of the
// epoch record.
func epochKey() []byte {
	k := make([]byte, 0, len(EpochBucket)+1+len(epochKeySuffix))
	k = append(k, EpochBucket...)
	k = append(k, 0)
	return append(k, epochKeySuffix...)
}

// epochFromTree reads the persisted epoch out of a tree; a missing or
// malformed record is epoch 0 (never promoted).
func epochFromTree(t tree) uint64 {
	v, ok := t.Get(epochKey())
	if !ok || len(v) != 8 {
		return 0
	}
	return binary.BigEndian.Uint64(v)
}

// Epoch returns the database's promotion epoch: the highest epoch bump
// contained in its committed history.
func (db *DB) Epoch() uint64 { return db.epoch.Load() }

// Fenced reports whether the database is in the sticky fenced
// (read-only) state — a single atomic load, cheap enough for a
// per-request gate.
func (db *DB) Fenced() bool { return db.fenced.Load() }

// Fence moves the database into the sticky fenced state: every Update
// returns ErrFenced until BumpEpoch or Unfence. Reads, ApplyBatch, and
// snapshot restore are unaffected — a fenced node can still serve
// lookups and rejoin as a replica.
func (db *DB) Fence() { db.fenced.Store(true) }

// Unfence clears the fenced state without changing the epoch. The
// demotion path uses it once the node has been put back into replica
// mode, where ErrReplica gates writes instead.
func (db *DB) Unfence() { db.fenced.Store(false) }

// BumpEpoch durably commits epoch+1 and returns the new value. It is
// the first step of promotion and deliberately works in replica mode
// (the node is still a replica while the bump commits) and in the
// fenced state (taking over at a yet-higher epoch is exactly how a
// fenced node becomes authoritative again — the bump unfences). The
// commit is fsynced even when the store was opened without SyncWrites:
// a promotion that could be lost to a crash would let the node restart
// at its old epoch and accept conflicting history.
func (db *DB) BumpEpoch() (uint64, error) {
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if db.failed.Load() {
		return 0, db.failedErr()
	}
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	if db.closed.Load() {
		return 0, ErrClosed
	}
	if db.failed.Load() {
		return 0, db.failedErr()
	}

	next := db.epoch.Load() + 1
	var val [8]byte
	binary.BigEndian.PutUint64(val[:], next)
	seq := db.seq.Load() + 1
	wb := walBatch{seq: seq, ops: []walOp{{op: opPut, key: epochKey(), val: val[:]}}}

	if db.wal != nil {
		n, err := db.wal.appendGroup([]walBatch{wb})
		if err != nil {
			db.fail(err)
			return 0, db.failedErr()
		}
		db.walBytes.Add(uint64(n))
		if !db.opts.SyncWrites {
			if err := db.wal.syncNow(); err != nil {
				db.fail(err)
				return 0, db.failedErr()
			}
		}
		db.walFsyncs.Add(1)
	}
	db.walGroups.Add(1)
	db.walBatches.Add(1)

	t := db.current.Load().Put(epochKey(), val[:])
	db.writeMu.Lock()
	db.current.Store(&t)
	db.seq.Store(seq)
	db.staged = t
	db.stageSeq = seq
	db.writeMu.Unlock()
	db.epoch.Store(next)
	db.fenced.Store(false)
	db.noteCommit(wb)
	db.fireApplyHook(exportBatch(wb))
	db.pending++
	return next, nil
}
