package storedb

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

func eput(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte(key), []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
}

func TestBumpEpochDurable(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir}) // SyncWrites off: bump must fsync anyway
	if err != nil {
		t.Fatal(err)
	}
	if db.Epoch() != 0 {
		t.Fatalf("fresh epoch = %d, want 0", db.Epoch())
	}
	eput(t, db, "k", "v")
	syncs := 0
	installFS(&fsHooks{sync: func(f *os.File, label string) error {
		syncs++
		return f.Sync()
	}})
	e, err := db.BumpEpoch()
	installFS(nil)
	if err != nil {
		t.Fatal(err)
	}
	if e != 1 || db.Epoch() != 1 {
		t.Fatalf("epoch after bump = %d (returned %d), want 1", db.Epoch(), e)
	}
	if syncs == 0 {
		t.Fatal("epoch bump did not fsync on a SyncWrites=false store")
	}
	seq := db.Seq()
	db.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Epoch() != 1 {
		t.Fatalf("recovered epoch = %d, want 1", db2.Epoch())
	}
	if db2.Seq() != seq {
		t.Fatalf("recovered seq = %d, want %d", db2.Seq(), seq)
	}
}

func TestBumpEpochWorksInReplicaModeAndUnfences(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	db.SetReplicaMode(true)
	db.Fence()
	if err := db.Update(func(tx *Tx) error { return nil }); !errors.Is(err, ErrReplica) {
		t.Fatalf("update in replica mode err = %v", err)
	}
	if _, err := db.BumpEpoch(); err != nil {
		t.Fatalf("bump in replica mode: %v", err)
	}
	if db.Fenced() {
		t.Fatal("bump did not clear the fence")
	}
	db.SetReplicaMode(false)
	eput(t, db, "k", "v")
}

func TestFenceBlocksWrites(t *testing.T) {
	for _, opts := range []Options{{}, {Dir: t.TempDir()}} {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		eput(t, db, "k", "v")
		db.Fence()
		err = db.Update(func(tx *Tx) error {
			return tx.MustBucket("b").Put([]byte("k2"), []byte("v"))
		})
		if !errors.Is(err, ErrFenced) {
			t.Fatalf("fenced update err = %v, want ErrFenced", err)
		}
		// Reads still serve, and ApplyBatch still works (rejoin path).
		db.View(func(tx *Tx) error {
			if _, ok := tx.MustBucket("b").Get([]byte("k")); !ok {
				t.Fatal("read lost under fence")
			}
			return nil
		})
		if err := db.ApplyBatch(Batch{Seq: db.Seq() + 1, Ops: []Op{{Key: []byte("b\x00k3"), Val: []byte("v")}}}); err != nil {
			t.Fatalf("fenced ApplyBatch: %v", err)
		}
		db.Unfence()
		eput(t, db, "k4", "v")
		db.Close()
	}
}

func TestEpochReplicatesViaApplyBatchAndSnapshot(t *testing.T) {
	primary, _ := Open(Options{})
	defer primary.Close()
	eput(t, primary, "k", "v")
	if _, err := primary.BumpEpoch(); err != nil {
		t.Fatal(err)
	}
	if _, err := primary.BumpEpoch(); err != nil {
		t.Fatal(err)
	}

	// Batch shipping carries the epoch.
	replica, _ := Open(Options{})
	defer replica.Close()
	replica.SetReplicaMode(true)
	if err := primary.Since(0, 0, func(b Batch) error { return replica.ApplyBatch(b) }); err != nil {
		t.Fatal(err)
	}
	if replica.Epoch() != 2 {
		t.Fatalf("replica epoch via batches = %d, want 2", replica.Epoch())
	}
	if replica.ChainDigest() != primary.ChainDigest() {
		t.Fatal("digest chains diverged on identical history")
	}

	// Snapshot bootstrap carries it too.
	boot, _ := Open(Options{})
	defer boot.Close()
	var buf bytes.Buffer
	if _, err := primary.WriteSnapshotTo(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := boot.RestoreSnapshotFrom(&buf); err != nil {
		t.Fatal(err)
	}
	if boot.Epoch() != 2 {
		t.Fatalf("epoch via snapshot = %d, want 2", boot.Epoch())
	}
	if boot.ChainDigest() != primary.ChainDigest() {
		t.Fatal("snapshot restore did not adopt the digest anchor")
	}
}

func TestDigestAtAndSinceWithDigest(t *testing.T) {
	for _, opts := range []Options{{}, {Dir: t.TempDir()}} {
		db, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 8; i++ {
			eput(t, db, fmt.Sprintf("k%d", i), "v")
		}
		// The chain served by SinceWithDigest must reproduce DigestAt.
		prevWant, _ := db.DigestAt(0)
		err = db.SinceWithDigest(0, 0, func(b Batch, prev uint64) error {
			if prev != prevWant {
				t.Fatalf("batch %d prev digest = %x, want %x", b.Seq, prev, prevWant)
			}
			prevWant = chainStep(prev, EncodeBatch(b))
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		if prevWant != db.ChainDigest() {
			t.Fatal("chained digest does not land on ChainDigest")
		}
		if d, ok := db.DigestAt(db.Seq()); !ok || d != db.ChainDigest() {
			t.Fatalf("DigestAt(seq) = %x,%v, want %x", d, ok, db.ChainDigest())
		}
		db.Close()
	}
}

func TestDigestAtFromWALAfterRingRollover(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, ReplLogBuffer: 2, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	digests := map[uint64]uint64{}
	for i := 0; i < 10; i++ {
		eput(t, db, fmt.Sprintf("k%d", i), "v")
		digests[db.Seq()] = db.ChainDigest()
	}
	// Ring holds only the last 2; the rest must come from the WAL scan.
	for seq, want := range digests {
		got, ok := db.DigestAt(seq)
		if !ok || got != want {
			t.Fatalf("DigestAt(%d) = %x,%v, want %x", seq, got, ok, want)
		}
	}
}

func TestDigestSurvivesCompactionAndReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		eput(t, db, fmt.Sprintf("k%d", i), "v")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	for i := 5; i < 9; i++ {
		eput(t, db, fmt.Sprintf("k%d", i), "v")
	}
	want := db.ChainDigest()
	wantSeq := db.Seq()
	db.Close()

	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Seq() != wantSeq || db2.ChainDigest() != want {
		t.Fatalf("reopened (seq,digest) = (%d,%x), want (%d,%x)",
			db2.Seq(), db2.ChainDigest(), wantSeq, want)
	}
	if d, ok := db2.DigestAt(db2.SnapSeq()); !ok || d != db2.snapDigest.Load() {
		t.Fatalf("DigestAt(snapSeq) = %x,%v", d, ok)
	}
}

func TestSnapshotV1StillDecodes(t *testing.T) {
	dir := t.TempDir()
	// Hand-craft a version-1 snapshot: [4 ver][8 seq][8 count] entries crc.
	body := make([]byte, 0, 64)
	var hdr [20]byte
	binary.BigEndian.PutUint32(hdr[0:4], snapshotV1)
	binary.BigEndian.PutUint64(hdr[4:12], 7)
	binary.BigEndian.PutUint64(hdr[12:20], 1)
	body = append(body, hdr[:]...)
	body = append(body, 1, 'k', 1, 'v') // one entry, uvarint lengths
	file := append(append([]byte(nil), snapshotMagic[:]...), body...)
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], crc32.ChecksumIEEE(body))
	file = append(file, crcBuf[:]...)
	if err := os.WriteFile(filepath.Join(dir, "SNAPSHOT"), file, 0o600); err != nil {
		t.Fatal(err)
	}

	db, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("v1 snapshot rejected: %v", err)
	}
	defer db.Close()
	if db.Seq() != 7 || db.Len() != 1 {
		t.Fatalf("v1 decode (seq,len) = (%d,%d), want (7,1)", db.Seq(), db.Len())
	}
	if db.ChainDigest() != 0 {
		t.Fatalf("v1 digest anchor = %x, want 0", db.ChainDigest())
	}
}

func TestTruncateTail(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		eput(t, db, fmt.Sprintf("k%d", i), "v")
	}
	cut := uint64(3)
	wantDigest, ok := db.DigestAt(cut)
	if !ok {
		t.Fatal("digest at cut unknown")
	}
	removed, err := db.TruncateTail(cut)
	if err != nil {
		t.Fatal(err)
	}
	if len(removed) != 3 {
		t.Fatalf("removed %d batches, want 3", len(removed))
	}
	if removed[0].Seq != 4 || removed[2].Seq != 6 {
		t.Fatalf("removed seqs [%d..%d], want [4..6]", removed[0].Seq, removed[2].Seq)
	}
	if db.Seq() != cut || db.ChainDigest() != wantDigest {
		t.Fatalf("post-truncate (seq,digest) = (%d,%x), want (%d,%x)",
			db.Seq(), db.ChainDigest(), cut, wantDigest)
	}
	db.View(func(tx *Tx) error {
		b := tx.MustBucket("b")
		if _, ok := b.Get([]byte("k2")); !ok {
			t.Fatal("kept key lost")
		}
		if _, ok := b.Get([]byte("k4")); ok {
			t.Fatal("truncated key survived")
		}
		return nil
	})
	// The store keeps working: new history can replace the cut tail.
	if err := db.ApplyBatch(removed[0]); err != nil {
		t.Fatalf("apply after truncate: %v", err)
	}
	db.Close()

	// And the cut is durable.
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Seq() != cut+1 {
		t.Fatalf("recovered seq = %d, want %d", db2.Seq(), cut+1)
	}
}

func TestTruncateTailRefusals(t *testing.T) {
	mem, _ := Open(Options{})
	defer mem.Close()
	eput(t, mem, "k", "v")
	if _, err := mem.TruncateTail(0); !errors.Is(err, ErrCompacted) {
		t.Fatalf("in-memory truncate err = %v, want ErrCompacted", err)
	}

	dir := t.TempDir()
	db, _ := Open(Options{Dir: dir, CompactEvery: -1})
	defer db.Close()
	for i := 0; i < 4; i++ {
		eput(t, db, fmt.Sprintf("k%d", i), "v")
	}
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	eput(t, db, "k9", "v")
	if _, err := db.TruncateTail(2); !errors.Is(err, ErrCompacted) {
		t.Fatalf("below-floor truncate err = %v, want ErrCompacted", err)
	}
	if _, err := db.TruncateTail(99); err == nil {
		t.Fatal("beyond-seq truncate accepted")
	}
	if removed, err := db.TruncateTail(db.Seq()); err != nil || removed != nil {
		t.Fatalf("no-op truncate = %v,%v", removed, err)
	}
}

// TestPromotionCrashAtEverySyncPoint drives BumpEpoch through a power
// loss at every fsync point. The invariant: recovery lands on exactly
// (old epoch, old seq) or (new epoch, old seq+1) — a half-promoted
// zombie that remembers the bump without its history, or vice versa,
// must be impossible. Either way the node must be able to continue as
// a replica (apply the next batch) or as a primary (bump again).
func TestPromotionCrashAtEverySyncPoint(t *testing.T) {
	const seedCommits = 3
	for killAt := 1; ; killAt++ {
		dir := t.TempDir()

		// Seed a few committed batches without the simulator.
		db, err := Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1})
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < seedCommits; i++ {
			eput(t, db, fmt.Sprintf("seed%d", i), "v")
		}
		baseSeq, baseEpoch := db.Seq(), db.Epoch()
		db.Close()

		sim := newCrashSim(t, dir, killAt)
		// The seed writes are durable; record their synced sizes.
		for _, name := range []string{"WAL", "SNAPSHOT"} {
			p := filepath.Join(dir, name)
			if info, err := os.Stat(p); err == nil {
				sim.durable[p] = info.Size()
			}
		}
		sim.install()

		acked := false
		db, err = Open(Options{Dir: dir, SyncWrites: true, CompactEvery: -1})
		if err == nil {
			db.SetReplicaMode(true) // promotion starts from replica role
			if _, err := db.BumpEpoch(); err == nil {
				acked = true
			}
			db.Close()
		} else if !sim.killed {
			sim.uninstall()
			t.Fatalf("killAt=%d: open: %v", killAt, err)
		}

		survived := !sim.killed
		sim.powerLoss()
		sim.uninstall()

		db2, err := Open(Options{Dir: dir, SyncWrites: true})
		if err != nil {
			t.Fatalf("killAt=%d: recovery failed: %v", killAt, err)
		}
		epoch, seq := db2.Epoch(), db2.Seq()
		okOld := epoch == baseEpoch && seq == baseSeq
		okNew := epoch == baseEpoch+1 && seq == baseSeq+1
		if !okOld && !okNew {
			t.Fatalf("killAt=%d: recovered (epoch,seq) = (%d,%d); want (%d,%d) or (%d,%d)",
				killAt, epoch, seq, baseEpoch, baseSeq, baseEpoch+1, baseSeq+1)
		}
		if acked && !okNew {
			t.Fatalf("killAt=%d: acked promotion lost: (epoch,seq) = (%d,%d)", killAt, epoch, seq)
		}
		// Not a zombie: both roles still work from the recovered state.
		if err := db2.ApplyBatch(Batch{Seq: seq + 1, Ops: []Op{{Key: []byte("b\x00next"), Val: []byte("v")}}}); err != nil {
			t.Fatalf("killAt=%d: recovered node cannot continue as replica: %v", killAt, err)
		}
		if _, err := db2.BumpEpoch(); err != nil {
			t.Fatalf("killAt=%d: recovered node cannot promote: %v", killAt, err)
		}
		db2.Close()

		if survived {
			if killAt < 2 {
				t.Fatalf("promotion hit only %d sync points; test is vacuous", killAt-1)
			}
			return
		}
	}
}
