package storedb

import (
	"bytes"
	"testing"
)

// FuzzDecodeWalBatch hardens the WAL decoder against arbitrary bytes:
// it must never panic, and anything it accepts must re-encode to an
// equivalent batch.
func FuzzDecodeWalBatch(f *testing.F) {
	good := (&walBatch{seq: 7, ops: []walOp{
		{op: opPut, key: []byte("k"), val: []byte("v")},
		{op: opDelete, key: []byte("gone")},
	}}).encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 1})
	f.Add(good[:len(good)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := decodeWalBatch(data)
		if err != nil {
			return
		}
		re := batch.encode()
		again, err := decodeWalBatch(re)
		if err != nil {
			t.Fatalf("re-encode of accepted batch rejected: %v", err)
		}
		if again.seq != batch.seq || len(again.ops) != len(batch.ops) {
			t.Fatalf("round trip changed the batch: %d/%d ops", len(again.ops), len(batch.ops))
		}
		for i := range batch.ops {
			if again.ops[i].op != batch.ops[i].op ||
				!bytes.Equal(again.ops[i].key, batch.ops[i].key) ||
				!bytes.Equal(again.ops[i].val, batch.ops[i].val) {
				t.Fatalf("op %d changed in round trip", i)
			}
		}
	})
}

// FuzzTakeString hardens the ordered-key string decoder.
func FuzzTakeString(f *testing.F) {
	f.Add(AppendString(nil, "hello"))
	f.Add(AppendString(nil, "with\x00nul"))
	f.Add([]byte{0x00})
	f.Add([]byte{'a', 0x00, 0x07})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, rest, err := TakeString(data)
		if err != nil {
			return
		}
		// Accepted input: re-encoding the decoded string plus the rest
		// must reproduce the original bytes.
		re := append(AppendString(nil, s), rest...)
		if !bytes.Equal(re, data) {
			t.Fatalf("TakeString not injective: %x -> %q + %x", data, s, rest)
		}
	})
}
