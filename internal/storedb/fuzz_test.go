package storedb

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"testing"
)

// FuzzDecodeWalBatch hardens the WAL decoder against arbitrary bytes:
// it must never panic, and anything it accepts must re-encode to an
// equivalent batch.
func FuzzDecodeWalBatch(f *testing.F) {
	good := (&walBatch{seq: 7, ops: []walOp{
		{op: opPut, key: []byte("k"), val: []byte("v")},
		{op: opDelete, key: []byte("gone")},
	}}).encode()
	f.Add(good)
	f.Add([]byte{})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 1, 1})
	f.Add(good[:len(good)-2])

	f.Fuzz(func(t *testing.T, data []byte) {
		batch, err := decodeWalBatch(data)
		if err != nil {
			return
		}
		re := batch.encode()
		again, err := decodeWalBatch(re)
		if err != nil {
			t.Fatalf("re-encode of accepted batch rejected: %v", err)
		}
		if again.seq != batch.seq || len(again.ops) != len(batch.ops) {
			t.Fatalf("round trip changed the batch: %d/%d ops", len(again.ops), len(batch.ops))
		}
		for i := range batch.ops {
			if again.ops[i].op != batch.ops[i].op ||
				!bytes.Equal(again.ops[i].key, batch.ops[i].key) ||
				!bytes.Equal(again.ops[i].val, batch.ops[i].val) {
				t.Fatalf("op %d changed in round trip", i)
			}
		}
	})
}

// WAL-tail mutation harness. pristineWal builds a log of n committed
// single-op batches and returns its bytes plus the per-frame end
// offsets; checkPrefixProperty writes a (possibly mutated) log to disk
// and asserts the recovery prefix property — replay yields batches
// 1..k for some k, in order, never a torn, duplicated, or reordered
// frame — and that replayWal leaves a file a writer can append to.
func pristineWal(t testing.TB, n int) (data []byte, frameEnds []int64) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "WAL")
	w, err := openWalWriter(path, false)
	if err != nil {
		t.Fatal(err)
	}
	for seq := 1; seq <= n; seq++ {
		b := walBatch{seq: uint64(seq), ops: []walOp{
			{op: opPut, key: []byte(fmt.Sprintf("key-%03d", seq)), val: []byte(fmt.Sprintf("val-%03d", seq))},
		}}
		if _, err := w.appendGroup([]walBatch{b}); err != nil {
			t.Fatal(err)
		}
		frameEnds = append(frameEnds, w.off)
	}
	if err := w.close(); err != nil {
		t.Fatal(err)
	}
	data, err = os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return data, frameEnds
}

func checkPrefixProperty(t testing.TB, mutated []byte, committed int, mustStartAtOne bool) {
	t.Helper()
	dir := t.TempDir()
	path := filepath.Join(dir, "WAL")
	if err := os.WriteFile(path, mutated, 0o600); err != nil {
		t.Fatal(err)
	}

	// Replay must emit a contiguous ascending run of the committed
	// batches with each frame's content still bound to its sequence —
	// never a duplicated, reordered, or cross-wired one. Mutations that
	// only damage the log in place (truncation, byte corruption,
	// appended garbage) additionally keep the run anchored at 1: a true
	// prefix. A splice can fabricate a log that starts mid-history,
	// which is exactly the shape of a legitimate post-compaction log —
	// Open's snapshot sequence gate owns that case.
	var first, next uint64
	lastSeq, err := replayWal(path, func(b walBatch) error {
		if first == 0 {
			first, next = b.seq, b.seq
		}
		if b.seq != next {
			t.Fatalf("replay emitted seq %d, want %d: not contiguous", b.seq, next)
		}
		if len(b.ops) != 1 {
			t.Fatalf("replay emitted %d ops in batch %d, want 1", len(b.ops), b.seq)
		}
		wantKey := fmt.Sprintf("key-%03d", b.seq)
		if string(b.ops[0].key) != wantKey {
			t.Fatalf("batch %d carries key %q, want %q: frame content reassigned", b.seq, b.ops[0].key, wantKey)
		}
		next++
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if first != 0 && lastSeq != next-1 {
		t.Fatalf("replay reported lastSeq %d after emitting up to %d", lastSeq, next-1)
	}
	if lastSeq > uint64(committed) {
		t.Fatalf("replay produced seq %d from a log of %d", lastSeq, committed)
	}
	if mustStartAtOne && first > 1 {
		t.Fatalf("replay started at seq %d, want a prefix from 1", first)
	}

	// After truncation the log must accept appends that future recovery
	// also reads back — the recovered prefix composes with new commits.
	w, err := openWalWriter(path, false)
	if err != nil {
		t.Fatalf("reopen after truncate: %v", err)
	}
	cont := walBatch{seq: lastSeq + 1, ops: []walOp{{op: opPut, key: []byte("cont"), val: []byte("v")}}}
	if _, err := w.appendGroup([]walBatch{cont}); err != nil {
		t.Fatalf("append after truncate: %v", err)
	}
	w.close()
	gotCont := false
	if _, _, err := scanWal(path, func(b walBatch) error {
		if b.seq == lastSeq+1 && string(b.ops[0].key) == "cont" {
			gotCont = true
		}
		return nil
	}); err != nil {
		t.Fatalf("rescan: %v", err)
	}
	if !gotCont {
		t.Fatal("appended batch not visible after truncated-tail recovery")
	}
}

// FuzzWALTail mutates a pristine multi-batch log — byte flips,
// truncations, duplicated and reordered frames, arbitrary splices —
// and asserts the recovery prefix property holds for every mutation.
func FuzzWALTail(f *testing.F) {
	const committed = 6
	data, ends := pristineWal(f, committed)

	// Seeds: one exemplar of each mutation class.
	f.Add(0, 0, data[:ends[2]])                                   // clean truncation at a frame boundary
	f.Add(1, int(ends[1])+5, []byte{0xff})                        // corrupt a byte mid-frame
	f.Add(2, int(ends[committed-1]), data[:ends[0]])              // duplicate frame 1 at the tail
	f.Add(2, int(ends[committed-1]), data[ends[1]:ends[2]])       // re-append frame 3 (reorder)
	f.Add(0, int(ends[committed-1])-3, []byte{})                  // torn final frame
	f.Add(2, int(ends[committed-1]), []byte{0, 0, 0, 9, 1, 2, 3}) // garbage tail

	f.Fuzz(func(t *testing.T, mode, pos int, chunk []byte) {
		mutated := append([]byte(nil), data...)
		if pos < 0 {
			pos = -pos
		}
		switch mode % 3 {
		case 0: // truncate at pos
			if pos > len(mutated) {
				pos = len(mutated)
			}
			mutated = mutated[:pos]
		case 1: // overwrite bytes at pos with chunk
			if pos >= len(mutated) {
				pos = pos % (len(mutated) + 1)
			}
			for i, c := range chunk {
				if pos+i >= len(mutated) {
					break
				}
				mutated[pos+i] = c
			}
		case 2: // splice chunk in at pos (insert, shifting the tail)
			if pos > len(mutated) {
				pos = pos % (len(mutated) + 1)
			}
			rest := append([]byte(nil), mutated[pos:]...)
			mutated = append(append(mutated[:pos], chunk...), rest...)
		}
		checkPrefixProperty(t, mutated, committed, mode%3 == 0)
	})
}

// TestWALTruncationAtEveryOffset cuts the log after every byte offset
// and checks the prefix property for each — the deterministic
// exhaustive core of what FuzzWALTail explores.
func TestWALTruncationAtEveryOffset(t *testing.T) {
	const committed = 5
	data, _ := pristineWal(t, committed)
	for cut := 0; cut <= len(data); cut++ {
		checkPrefixProperty(t, data[:cut], committed, true)
	}
}

// TestWALCRCFlipAtEveryFrame flips one bit inside each frame's payload
// (and separately in its header) and checks that the damaged frame and
// everything after it is discarded while the frames before it survive.
func TestWALCRCFlipAtEveryFrame(t *testing.T) {
	const committed = 5
	data, ends := pristineWal(t, committed)
	start := int64(0)
	for i, end := range ends {
		for _, off := range []int64{start, start + walHeaderSize, end - 1} {
			mutated := append([]byte(nil), data...)
			mutated[off] ^= 0x40
			var next uint64 = 1
			lastSeq, _, err := scanWal(writeTempWal(t, mutated), func(b walBatch) error {
				if b.seq != next {
					t.Fatalf("frame %d flip at %d: seq %d after %d", i, off, b.seq, next-1)
				}
				next++
				return nil
			})
			if err != nil {
				t.Fatal(err)
			}
			if lastSeq > uint64(i) {
				t.Fatalf("frame %d flip at %d: damaged frame survived (lastSeq %d)", i, off, lastSeq)
			}
		}
		start = end
	}
}

// TestWALDuplicatedFrameCutsTail covers the seq-contiguity rule
// directly: a duplicated or reordered frame ends replay at the last
// good prefix instead of re-applying old operations. The duplicated
// frame has a valid CRC, so only the sequence check can catch it.
func TestWALDuplicatedFrameCutsTail(t *testing.T) {
	const committed = 4
	data, ends := pristineWal(t, committed)

	// Duplicate frame 2 (bytes ends[0]:ends[1]) at the tail.
	dup := append(append([]byte(nil), data...), data[ends[0]:ends[1]]...)
	checkPrefixProperty(t, dup, committed, true)
	lastSeq, _, err := scanWal(writeTempWal(t, dup), func(walBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != committed {
		t.Fatalf("duplicated tail frame: lastSeq = %d, want %d", lastSeq, committed)
	}

	// Duplicate frame 2 in the middle: everything from the duplicate on
	// is discarded, frames 1-2 survive.
	mid := append(append([]byte(nil), data[:ends[1]]...), data[ends[0]:]...)
	lastSeq, _, err = scanWal(writeTempWal(t, mid), func(walBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 2 {
		t.Fatalf("mid-log duplicate: lastSeq = %d, want 2", lastSeq)
	}

	// A skipped frame (gap) likewise cuts the tail.
	gap := append(append([]byte(nil), data[:ends[1]]...), data[ends[2]:]...)
	lastSeq, _, err = scanWal(writeTempWal(t, gap), func(walBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != 2 {
		t.Fatalf("sequence gap: lastSeq = %d, want 2", lastSeq)
	}
}

// TestWALForgedLengthHeader forges a frame header whose length field
// points past the end of the file, and one whose CRC matches truncated
// garbage; neither may panic or over-read.
func TestWALForgedLengthHeader(t *testing.T) {
	const committed = 3
	data, _ := pristineWal(t, committed)
	var hdr [walHeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], 1<<29)
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(nil))
	forged := append(append([]byte(nil), data...), hdr[:]...)
	lastSeq, _, err := scanWal(writeTempWal(t, forged), func(walBatch) error { return nil })
	if err != nil {
		t.Fatal(err)
	}
	if lastSeq != committed {
		t.Fatalf("forged header: lastSeq = %d, want %d", lastSeq, committed)
	}
}

func writeTempWal(t *testing.T, data []byte) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "WAL")
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	return path
}

// FuzzTakeString hardens the ordered-key string decoder.
func FuzzTakeString(f *testing.F) {
	f.Add(AppendString(nil, "hello"))
	f.Add(AppendString(nil, "with\x00nul"))
	f.Add([]byte{0x00})
	f.Add([]byte{'a', 0x00, 0x07})

	f.Fuzz(func(t *testing.T, data []byte) {
		s, rest, err := TakeString(data)
		if err != nil {
			return
		}
		// Accepted input: re-encoding the decoded string plus the rest
		// must reproduce the original bytes.
		re := append(AppendString(nil, s), rest...)
		if !bytes.Equal(re, data) {
			t.Fatalf("TakeString not injective: %x -> %q + %x", data, s, rest)
		}
	})
}
