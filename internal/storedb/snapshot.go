package storedb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot files hold a full, sorted dump of the tree so that the WAL can
// be truncated during compaction. Layout (version 3):
//
//	[8 bytes magic "SREPSNAP"][4 bytes version]
//	header block:  [4 bytes length = 24][4 bytes CRC-32 of payload]
//	               [8 bytes sequence][8 bytes history digest][8 bytes entry count]
//	bucket blocks: [4 bytes length][4 bytes CRC-32 of payload]
//	               payload: [uvarint key len][key][uvarint value len][value] ...
//
// Every block carries its own checksum, so corruption is localized: a
// scrub names the damaged block, and a decode rejects a block before
// trusting any entry in it. Blocks hold whole entries (an entry never
// spans blocks), the writer targets snapshotBlockTarget bytes per block,
// and no block may exceed maxSnapshotBlock — which also bounds what a
// reader will allocate from a corrupt or forged length field, the same
// discipline scanWalFrames applies to WAL frames.
//
// Version 2 files carry one whole-file CRC trailer instead of per-block
// checksums; version 1 additionally lacks the digest field and decodes
// with a zero digest anchor. Both still open (version-negotiated), so a
// store written before the format change upgrades in place at its next
// compaction.
//
// A snapshot is written to a temporary file, synced, and renamed into
// place, then the directory is synced so the rename itself survives a
// power loss — a rename is atomic but not durable until its parent
// directory reaches disk, and compaction swaps the WAL right after, so
// losing the rename would lose the database.
//
// The same byte layout doubles as the replication bootstrap stream: a
// fresh or hopelessly lagged replica downloads one snapshot stream and
// then tails WAL batches from its sequence number. Corruption repair
// reuses the stream in the other direction — a corrupt primary restores
// itself from a healthy replica's snapshot.

var snapshotMagic = [8]byte{'S', 'R', 'E', 'P', 'S', 'N', 'A', 'P'}

const (
	snapshotV1      = 1
	snapshotV2      = 2
	snapshotVersion = 3

	// snapshotHeaderLen is the payload length of the v3 header block.
	snapshotHeaderLen = 24
	// snapshotBlockTarget is the payload size the writer aims for.
	snapshotBlockTarget = 64 << 10
	// maxSnapshotBlock caps a block payload on both sides: the writer
	// never emits more (a single entry larger than this is refused) and
	// the reader never allocates more from a length field.
	maxSnapshotBlock = 1 << 26
)

// writeSnapshotBlock frames one block: length, CRC of the payload, the
// payload itself.
func writeSnapshotBlock(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// encodeSnapshot writes the full v3 snapshot layout for the given tree,
// sequence number, and history digest to w.
func encodeSnapshot(w io.Writer, t tree, seq, digest uint64) error {
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	var verBuf [4]byte
	binary.BigEndian.PutUint32(verBuf[:], snapshotVersion)
	if _, err := w.Write(verBuf[:]); err != nil {
		return err
	}
	var hdr [snapshotHeaderLen]byte
	binary.BigEndian.PutUint64(hdr[0:8], seq)
	binary.BigEndian.PutUint64(hdr[8:16], digest)
	binary.BigEndian.PutUint64(hdr[16:24], uint64(t.Len()))
	if err := writeSnapshotBlock(w, hdr[:]); err != nil {
		return err
	}

	var varbuf [binary.MaxVarintLen64]byte
	block := make([]byte, 0, snapshotBlockTarget+4096)
	werr := error(nil)
	t.Ascend(nil, nil, func(k, v []byte) bool {
		need := 2*binary.MaxVarintLen64 + len(k) + len(v)
		if need > maxSnapshotBlock {
			werr = fmt.Errorf("entry of %d bytes exceeds max snapshot block", need)
			return false
		}
		if len(block) > 0 && len(block)+need > maxSnapshotBlock {
			if werr = writeSnapshotBlock(w, block); werr != nil {
				return false
			}
			block = block[:0]
		}
		n := binary.PutUvarint(varbuf[:], uint64(len(k)))
		block = append(block, varbuf[:n]...)
		block = append(block, k...)
		n = binary.PutUvarint(varbuf[:], uint64(len(v)))
		block = append(block, varbuf[:n]...)
		block = append(block, v...)
		if len(block) >= snapshotBlockTarget {
			if werr = writeSnapshotBlock(w, block); werr != nil {
				return false
			}
			block = block[:0]
		}
		return true
	})
	if werr != nil {
		return fmt.Errorf("storedb: write snapshot: %w", werr)
	}
	if len(block) > 0 {
		if err := writeSnapshotBlock(w, block); err != nil {
			return fmt.Errorf("storedb: write snapshot: %w", err)
		}
	}
	return nil
}

func writeSnapshot(dir string, t tree, seq, digest uint64) (err error) {
	tmp := filepath.Join(dir, "SNAPSHOT.tmp")
	final := filepath.Join(dir, "SNAPSHOT")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("storedb: create snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<16)
	if err = encodeSnapshot(bw, t, seq, digest); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("storedb: flush snapshot: %w", err)
	}
	if err = fsSync(f, "snapshot"); err != nil {
		return fmt.Errorf("storedb: sync snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("storedb: close snapshot: %w", err)
	}
	if err = fsRename(tmp, final); err != nil {
		return fmt.Errorf("storedb: install snapshot: %w", err)
	}
	// Make the rename durable before the caller swaps the WAL the
	// snapshot replaces.
	if err = fsSyncDir(dir); err != nil {
		return fmt.Errorf("storedb: sync snapshot dir: %w", err)
	}
	return nil
}

// snapshotReader tracks how many bytes remain readable so length fields
// taken from the stream can be bounded before any allocation — a
// corrupt or forged length must never cost a giant buffer. For a file
// the budget is its actual size; for a network stream (budget < 0) the
// per-block cap is the only bound.
type snapshotReader struct {
	br     *bufio.Reader
	budget int64 // bytes left; < 0 means unknown
}

func (s *snapshotReader) full(p []byte) error {
	if s.budget >= 0 && int64(len(p)) > s.budget {
		return fmt.Errorf("need %d bytes, %d left in file", len(p), s.budget)
	}
	if _, err := io.ReadFull(s.br, p); err != nil {
		return err
	}
	if s.budget >= 0 {
		s.budget -= int64(len(p))
	}
	return nil
}

// block reads one length-prefixed, CRC-checked block payload.
func (s *snapshotReader) block() ([]byte, error) {
	var hdr [8]byte
	if err := s.full(hdr[:]); err != nil {
		return nil, err
	}
	length := binary.BigEndian.Uint32(hdr[0:4])
	wantCRC := binary.BigEndian.Uint32(hdr[4:8])
	if length == 0 || length > maxSnapshotBlock {
		return nil, fmt.Errorf("block length %d out of range", length)
	}
	if s.budget >= 0 && int64(length) > s.budget {
		return nil, fmt.Errorf("block length %d exceeds %d bytes left in file", length, s.budget)
	}
	payload := make([]byte, length)
	if err := s.full(payload); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(payload) != wantCRC {
		return nil, fmt.Errorf("block crc mismatch")
	}
	return payload, nil
}

// parseSnapshotHeader validates the v3 header block payload.
func parseSnapshotHeader(payload []byte) (seq, digest, count uint64, err error) {
	if len(payload) != snapshotHeaderLen {
		return 0, 0, 0, fmt.Errorf("header block is %d bytes, want %d", len(payload), snapshotHeaderLen)
	}
	seq = binary.BigEndian.Uint64(payload[0:8])
	digest = binary.BigEndian.Uint64(payload[8:16])
	count = binary.BigEndian.Uint64(payload[16:24])
	return seq, digest, count, nil
}

// snapshotEntries walks the packed entries of one block payload,
// calling fn for each key/value pair (slices alias the payload). It
// enforces the same bounded-length discipline as the block framing:
// every length is checked against the bytes actually present before it
// is used.
func snapshotEntries(payload []byte, fn func(k, v []byte) error) (int, error) {
	n := 0
	for len(payload) > 0 {
		klen, w := binary.Uvarint(payload)
		if w <= 0 || klen > uint64(len(payload)-w) {
			return n, fmt.Errorf("bad key length")
		}
		payload = payload[w:]
		key := payload[:klen:klen]
		payload = payload[klen:]
		vlen, w := binary.Uvarint(payload)
		if w <= 0 || vlen > uint64(len(payload)-w) {
			return n, fmt.Errorf("bad value length")
		}
		payload = payload[w:]
		val := payload[:vlen:vlen]
		payload = payload[vlen:]
		if err := fn(key, val); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// decodeSnapshot reads one snapshot stream from r, negotiating the
// format version. size is the total stream size when known (a file) and
// <= 0 for a network stream; when known, it bounds every length field
// against the bytes actually present, exactly as scanWalFrames bounds
// WAL frame lengths. Each v3 block's CRC is verified before any entry
// in it is trusted; v1/v2 streams verify their whole-file trailer
// inline, and callers that cannot two-pass must discard the result on
// error.
func decodeSnapshot(r io.Reader, size int64) (tree, uint64, uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != snapshotMagic {
		return tree{}, 0, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	var verBuf [4]byte
	if _, err := io.ReadFull(br, verBuf[:]); err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
	}
	budget := int64(-1)
	if size > 0 {
		budget = size - int64(len(snapshotMagic)) - 4
	}
	switch v := binary.BigEndian.Uint32(verBuf[:]); v {
	case snapshotV1, snapshotV2:
		return decodeSnapshotLegacy(br, v, budget)
	case snapshotVersion:
		// Fall through to the block decode below.
	default:
		return tree{}, 0, 0, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}

	sr := &snapshotReader{br: br, budget: budget}
	hdr, err := sr.block()
	if err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	seq, digest, count, err := parseSnapshotHeader(hdr)
	if err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, err)
	}
	var t tree
	var got uint64
	for got < count {
		payload, err := sr.block()
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot block after entry %d: %v", ErrCorrupt, got, err)
		}
		n, err := snapshotEntries(payload, func(k, v []byte) error {
			if got >= count {
				return fmt.Errorf("more entries than header count %d", count)
			}
			got++
			t = t.Put(k, v)
			return nil
		})
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot block entry %d: %v", ErrCorrupt, got, err)
		}
		if n == 0 {
			return tree{}, 0, 0, fmt.Errorf("%w: empty snapshot block", ErrCorrupt)
		}
	}
	return t, seq, digest, nil
}

// crcByteReader reads from a buffered reader while folding every
// consumed byte into a running CRC, so a legacy stream decode can
// verify the trailer without buffering the whole snapshot or reading
// the file twice.
type crcByteReader struct {
	br     *bufio.Reader
	crc    uint32
	budget int64 // bytes left before the trailer; < 0 means unknown
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return b, err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	if c.budget >= 0 {
		c.budget--
	}
	return b, nil
}

func (c *crcByteReader) full(p []byte) error {
	if _, err := io.ReadFull(c.br, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	if c.budget >= 0 {
		c.budget -= int64(len(p))
	}
	return nil
}

func (c *crcByteReader) lenPrefixed() ([]byte, error) {
	n, err := binary.ReadUvarint(c)
	if err != nil {
		return nil, err
	}
	// Bound the allocation before making it: by the bytes actually
	// remaining when the stream size is known, and by the block cap
	// otherwise — a forged length field must never cost a giant buffer.
	if n > maxSnapshotBlock {
		return nil, fmt.Errorf("length %d too large", n)
	}
	if c.budget >= 0 && int64(n) > c.budget {
		return nil, fmt.Errorf("length %d exceeds %d bytes left in file", n, c.budget)
	}
	buf := make([]byte, n)
	if err := c.full(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// decodeSnapshotLegacy decodes the v1/v2 single-trailer layout. The
// magic and version have already been consumed; budget counts the bytes
// after the version field (or -1 when unknown).
func decodeSnapshotLegacy(br *bufio.Reader, version uint32, budget int64) (tree, uint64, uint64, error) {
	if budget >= 0 {
		budget -= 4 // trailer CRC is not part of the entry budget
	}
	cr := &crcByteReader{br: br, budget: budget}
	// The legacy trailer covers the version field too; fold it back in.
	var verBuf [4]byte
	binary.BigEndian.PutUint32(verBuf[:], version)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, verBuf[:])

	var seq, digest, count uint64
	switch version {
	case snapshotV1:
		var hdr [16]byte
		if err := cr.full(hdr[:]); err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
		}
		seq = binary.BigEndian.Uint64(hdr[0:8])
		count = binary.BigEndian.Uint64(hdr[8:16])
	case snapshotV2:
		var hdr [24]byte
		if err := cr.full(hdr[:]); err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
		}
		seq = binary.BigEndian.Uint64(hdr[0:8])
		digest = binary.BigEndian.Uint64(hdr[8:16])
		count = binary.BigEndian.Uint64(hdr[16:24])
	}

	var t tree
	for i := uint64(0); i < count; i++ {
		key, err := cr.lenPrefixed()
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot entry %d key: %v", ErrCorrupt, i, err)
		}
		val, err := cr.lenPrefixed()
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot entry %d value: %v", ErrCorrupt, i, err)
		}
		t = t.Put(key, val)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(cr.br, trailer[:]); err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot trailer: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(trailer[:]) != cr.crc {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot crc mismatch", ErrCorrupt)
	}
	return t, seq, digest, nil
}

// loadSnapshot reads the snapshot in dir, if present. Checksums are
// verified before any entry is trusted: per block for v3 files, via the
// whole-file trailer pre-pass for legacy versions. It returns the
// restored tree, its sequence number, and its history digest anchor; a
// missing snapshot yields an empty tree at seq 0 with a zero digest.
func loadSnapshot(dir string) (tree, uint64, uint64, error) {
	path := filepath.Join(dir, "SNAPSHOT")
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return tree{}, 0, 0, nil
	}
	if err != nil {
		return tree{}, 0, 0, fmt.Errorf("storedb: open snapshot: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return tree{}, 0, 0, fmt.Errorf("storedb: stat snapshot: %w", err)
	}
	if v, verr := snapshotFileVersion(f); verr == nil && v < snapshotVersion {
		if err := verifySnapshotCRC(f, info.Size()); err != nil {
			return tree{}, 0, 0, err
		}
	}
	if _, err := f.Seek(0, io.SeekStart); err != nil {
		return tree{}, 0, 0, fmt.Errorf("storedb: seek snapshot: %w", err)
	}
	return decodeSnapshot(f, info.Size())
}

// snapshotFileVersion reads the version field of an open snapshot file,
// leaving the offset unspecified.
func snapshotFileVersion(f *os.File) (uint32, error) {
	var hdr [12]byte
	if _, err := f.ReadAt(hdr[:], 0); err != nil {
		return 0, err
	}
	return binary.BigEndian.Uint32(hdr[8:12]), nil
}

// verifySnapshotCRC checks a legacy file's trailer CRC over the
// checksummed region (everything between magic and trailer).
func verifySnapshotCRC(f *os.File, size int64) error {
	if size < int64(len(snapshotMagic))+4 {
		return fmt.Errorf("%w: snapshot too small", ErrCorrupt)
	}
	if _, err := f.Seek(int64(len(snapshotMagic)), io.SeekStart); err != nil {
		return err
	}
	body := size - int64(len(snapshotMagic)) - 4
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, f, body); err != nil {
		return fmt.Errorf("%w: snapshot body: %v", ErrCorrupt, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return fmt.Errorf("%w: snapshot trailer: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(trailer[:]) != h.Sum32() {
		return fmt.Errorf("%w: snapshot crc mismatch", ErrCorrupt)
	}
	return nil
}

// scrubSnapshotFile verifies every checksum in the snapshot at path
// without building a tree: the header block and each bucket block for
// v3 files, the whole-file trailer for legacy versions. It returns the
// header's sequence and digest, the number of blocks verified, and on
// corruption the unit that failed (UnitSnapshotHeader or
// UnitSnapshotBlock) alongside the error.
func scrubSnapshotFile(path string) (seq, digest uint64, blocks int, unit string, err error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("storedb: open snapshot for scrub: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("storedb: stat snapshot for scrub: %w", err)
	}

	br := bufio.NewReaderSize(f, 1<<16)
	var magic [8]byte
	if _, rerr := io.ReadFull(br, magic[:]); rerr != nil || magic != snapshotMagic {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	var verBuf [4]byte
	if _, rerr := io.ReadFull(br, verBuf[:]); rerr != nil {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
	}
	version := binary.BigEndian.Uint32(verBuf[:])
	if version != snapshotVersion && version != snapshotV1 && version != snapshotV2 {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, version)
	}
	if version < snapshotVersion {
		// Legacy layout: one trailer covers the whole file, so the file
		// is a single verifiable unit. Re-verify it and re-read the
		// header fields.
		if err := verifySnapshotCRC(f, info.Size()); err != nil {
			return 0, 0, 0, UnitSnapshotBlock, err
		}
		var hdr [36]byte
		n, _ := f.ReadAt(hdr[:], 0)
		if version == snapshotV1 && n >= 20 {
			seq = binary.BigEndian.Uint64(hdr[12:20])
		} else if version == snapshotV2 && n >= 28 {
			seq = binary.BigEndian.Uint64(hdr[12:20])
			digest = binary.BigEndian.Uint64(hdr[20:28])
		}
		return seq, digest, 1, "", nil
	}

	sr := &snapshotReader{br: br, budget: info.Size() - int64(len(snapshotMagic)) - 4}
	hdr, berr := sr.block()
	if berr != nil {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, berr)
	}
	seq, digest, count, perr := parseSnapshotHeader(hdr)
	if perr != nil {
		return 0, 0, 0, UnitSnapshotHeader, fmt.Errorf("%w: snapshot header: %v", ErrCorrupt, perr)
	}
	blocks = 1
	var got uint64
	for got < count {
		payload, berr := sr.block()
		if berr != nil {
			return seq, digest, blocks, UnitSnapshotBlock,
				fmt.Errorf("%w: snapshot block %d: %v", ErrCorrupt, blocks, berr)
		}
		n, eerr := snapshotEntries(payload, func(_, _ []byte) error { return nil })
		got += uint64(n)
		if eerr != nil || n == 0 || got > count {
			return seq, digest, blocks, UnitSnapshotBlock,
				fmt.Errorf("%w: snapshot block %d structure", ErrCorrupt, blocks)
		}
		blocks++
	}
	return seq, digest, blocks, "", nil
}
