package storedb

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Snapshot files hold a full, sorted dump of the tree so that the WAL can
// be truncated during compaction. Layout (version 2):
//
//	[8 bytes magic "SREPSNAP"][4 bytes version][8 bytes sequence number]
//	[8 bytes history digest at that sequence][8 bytes entry count]
//	entries: [uvarint key len][key][uvarint value len][value] ...
//	[4 bytes CRC-32 of everything between magic and trailer]
//
// Version 1 files lack the digest field; they decode with a zero digest
// anchor, which re-roots the chain — correct for a store that has never
// replicated, and a one-time full resync for one that has.
//
// A snapshot is written to a temporary file, synced, and renamed into
// place, then the directory is synced so the rename itself survives a
// power loss — a rename is atomic but not durable until its parent
// directory reaches disk, and compaction deletes the WAL right after,
// so losing the rename would lose the database.
//
// The same byte layout doubles as the replication bootstrap stream: a
// fresh or hopelessly lagged replica downloads one snapshot stream and
// then tails WAL batches from its sequence number.

var snapshotMagic = [8]byte{'S', 'R', 'E', 'P', 'S', 'N', 'A', 'P'}

const (
	snapshotV1      = 1
	snapshotVersion = 2
)

type crcWriter struct {
	w   io.Writer
	crc uint32
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p[:n])
	return n, err
}

// encodeSnapshot writes the full snapshot layout (magic through CRC
// trailer) for the given tree, sequence number, and history digest to w.
func encodeSnapshot(w io.Writer, t tree, seq, digest uint64) error {
	if _, err := w.Write(snapshotMagic[:]); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	var hdr [28]byte
	binary.BigEndian.PutUint32(hdr[0:4], snapshotVersion)
	binary.BigEndian.PutUint64(hdr[4:12], seq)
	binary.BigEndian.PutUint64(hdr[12:20], digest)
	binary.BigEndian.PutUint64(hdr[20:28], uint64(t.Len()))
	if _, err := cw.Write(hdr[:]); err != nil {
		return err
	}
	var varbuf [binary.MaxVarintLen64]byte
	werr := error(nil)
	t.Ascend(nil, nil, func(k, v []byte) bool {
		n := binary.PutUvarint(varbuf[:], uint64(len(k)))
		if _, werr = cw.Write(varbuf[:n]); werr != nil {
			return false
		}
		if _, werr = cw.Write(k); werr != nil {
			return false
		}
		n = binary.PutUvarint(varbuf[:], uint64(len(v)))
		if _, werr = cw.Write(varbuf[:n]); werr != nil {
			return false
		}
		_, werr = cw.Write(v)
		return werr == nil
	})
	if werr != nil {
		return fmt.Errorf("storedb: write snapshot: %w", werr)
	}
	var crcBuf [4]byte
	binary.BigEndian.PutUint32(crcBuf[:], cw.crc)
	if _, err := w.Write(crcBuf[:]); err != nil {
		return err
	}
	return nil
}

func writeSnapshot(dir string, t tree, seq, digest uint64) (err error) {
	tmp := filepath.Join(dir, "SNAPSHOT.tmp")
	final := filepath.Join(dir, "SNAPSHOT")
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o600)
	if err != nil {
		return fmt.Errorf("storedb: create snapshot: %w", err)
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(tmp)
		}
	}()

	bw := bufio.NewWriterSize(f, 1<<16)
	if err = encodeSnapshot(bw, t, seq, digest); err != nil {
		return err
	}
	if err = bw.Flush(); err != nil {
		return fmt.Errorf("storedb: flush snapshot: %w", err)
	}
	if err = fsSync(f, "snapshot"); err != nil {
		return fmt.Errorf("storedb: sync snapshot: %w", err)
	}
	if err = f.Close(); err != nil {
		return fmt.Errorf("storedb: close snapshot: %w", err)
	}
	if err = fsRename(tmp, final); err != nil {
		return fmt.Errorf("storedb: install snapshot: %w", err)
	}
	// Make the rename durable before the caller deletes the WAL the
	// snapshot replaces.
	if err = fsSyncDir(dir); err != nil {
		return fmt.Errorf("storedb: sync snapshot dir: %w", err)
	}
	return nil
}

// crcByteReader reads from a buffered reader while folding every
// consumed byte into a running CRC, so a stream decode can verify the
// trailer without buffering the whole snapshot or reading the file
// twice.
type crcByteReader struct {
	br  *bufio.Reader
	crc uint32
}

// ReadByte implements io.ByteReader for binary.ReadUvarint.
func (c *crcByteReader) ReadByte() (byte, error) {
	b, err := c.br.ReadByte()
	if err != nil {
		return b, err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, []byte{b})
	return b, nil
}

func (c *crcByteReader) full(p []byte) error {
	if _, err := io.ReadFull(c.br, p); err != nil {
		return err
	}
	c.crc = crc32.Update(c.crc, crc32.IEEETable, p)
	return nil
}

func (c *crcByteReader) lenPrefixed() ([]byte, error) {
	n, err := binary.ReadUvarint(c)
	if err != nil {
		return nil, err
	}
	if n > maxRecordSize {
		return nil, fmt.Errorf("length %d too large", n)
	}
	buf := make([]byte, n)
	if err := c.full(buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// decodeSnapshot reads one snapshot stream from r, verifying the
// trailer CRC over everything it consumed. It is the read side of
// encodeSnapshot; callers that cannot two-pass (a network stream) rely
// on the inline check and must discard the result on error.
func decodeSnapshot(r io.Reader) (tree, uint64, uint64, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil || magic != snapshotMagic {
		return tree{}, 0, 0, fmt.Errorf("%w: bad snapshot magic", ErrCorrupt)
	}
	cr := &crcByteReader{br: br}
	var verBuf [4]byte
	if err := cr.full(verBuf[:]); err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
	}
	var seq, digest, count uint64
	switch v := binary.BigEndian.Uint32(verBuf[:]); v {
	case snapshotV1:
		var hdr [16]byte
		if err := cr.full(hdr[:]); err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
		}
		seq = binary.BigEndian.Uint64(hdr[0:8])
		count = binary.BigEndian.Uint64(hdr[8:16])
	case snapshotVersion:
		var hdr [24]byte
		if err := cr.full(hdr[:]); err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: truncated snapshot header", ErrCorrupt)
		}
		seq = binary.BigEndian.Uint64(hdr[0:8])
		digest = binary.BigEndian.Uint64(hdr[8:16])
		count = binary.BigEndian.Uint64(hdr[16:24])
	default:
		return tree{}, 0, 0, fmt.Errorf("%w: unsupported snapshot version %d", ErrCorrupt, v)
	}

	var t tree
	for i := uint64(0); i < count; i++ {
		key, err := cr.lenPrefixed()
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot entry %d key: %v", ErrCorrupt, i, err)
		}
		val, err := cr.lenPrefixed()
		if err != nil {
			return tree{}, 0, 0, fmt.Errorf("%w: snapshot entry %d value: %v", ErrCorrupt, i, err)
		}
		t = t.Put(key, val)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(br, trailer[:]); err != nil {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot trailer: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(trailer[:]) != cr.crc {
		return tree{}, 0, 0, fmt.Errorf("%w: snapshot crc mismatch", ErrCorrupt)
	}
	return t, seq, digest, nil
}

// loadSnapshot reads the snapshot in dir, if present. The file's CRC is
// verified before any entry is trusted. It returns the restored tree,
// its sequence number, and its history digest anchor; a missing
// snapshot yields an empty tree at seq 0 with a zero digest.
func loadSnapshot(dir string) (tree, uint64, uint64, error) {
	path := filepath.Join(dir, "SNAPSHOT")
	if _, err := os.Stat(path); os.IsNotExist(err) {
		return tree{}, 0, 0, nil
	}
	if err := verifySnapshotCRC(path); err != nil {
		return tree{}, 0, 0, err
	}

	f, err := os.Open(path)
	if err != nil {
		return tree{}, 0, 0, fmt.Errorf("storedb: open snapshot: %w", err)
	}
	defer f.Close()
	return decodeSnapshot(f)
}

// verifySnapshotCRC checks the trailer CRC over the checksummed region
// (everything between magic and trailer).
func verifySnapshotCRC(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return fmt.Errorf("storedb: open snapshot for crc: %w", err)
	}
	defer f.Close()
	info, err := f.Stat()
	if err != nil {
		return fmt.Errorf("storedb: stat snapshot: %w", err)
	}
	size := info.Size()
	if size < int64(len(snapshotMagic))+4 {
		return fmt.Errorf("%w: snapshot too small", ErrCorrupt)
	}
	if _, err := f.Seek(int64(len(snapshotMagic)), io.SeekStart); err != nil {
		return err
	}
	body := size - int64(len(snapshotMagic)) - 4
	h := crc32.NewIEEE()
	if _, err := io.CopyN(h, f, body); err != nil {
		return fmt.Errorf("%w: snapshot body: %v", ErrCorrupt, err)
	}
	var trailer [4]byte
	if _, err := io.ReadFull(f, trailer[:]); err != nil {
		return fmt.Errorf("%w: snapshot trailer: %v", ErrCorrupt, err)
	}
	if binary.BigEndian.Uint32(trailer[:]) != h.Sum32() {
		return fmt.Errorf("%w: snapshot crc mismatch", ErrCorrupt)
	}
	return nil
}
