package storedb

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"os"
)

// History digest chain. Every committed batch extends a running 64-bit
// hash: digest(n) = H(digest(n-1) || payload(n)), where payload is the
// batch's deterministic WAL encoding. Two databases that hold the same
// digest at the same sequence number therefore hold byte-identical
// committed histories up to it — which is exactly what a replica needs
// to prove before resuming a WAL tail after a partition. The chain is
// anchored in the snapshot file (digest at the snapshot's sequence) so
// it survives compaction and restarts, and the replication frame format
// carries each batch's predecessor digest so divergence is detected
// before a foreign batch is applied onto a forked prefix.

// chainStep folds one batch payload into the running history digest.
// FNV-1a/64: not cryptographic, but the adversary here is a network
// partition, not a forger, and the CRC-framed transport already rejects
// corruption.
func chainStep(prev uint64, payload []byte) uint64 {
	h := fnv.New64a()
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], prev)
	h.Write(b[:])
	h.Write(payload)
	return h.Sum64()
}

// ChainDigest returns the history digest at the last committed
// sequence number.
func (db *DB) ChainDigest() uint64 { return db.chainDigest.Load() }

// ChainPosition returns a consistent (seq, digest) pair: the digest is
// the chain value at exactly the returned sequence. Seq() and
// ChainDigest() read the same values but can interleave with a commit;
// replication headers use this so a replica never compares its digest
// against a mismatched sequence.
func (db *DB) ChainPosition() (seq, digest uint64) {
	db.replMu.Lock()
	defer db.replMu.Unlock()
	return db.chainSeq, db.chainDigest.Load()
}

// DigestAt returns the history digest at the given sequence number, if
// the database can still derive it: from the current position, the
// in-memory tail ring, the snapshot anchor, or by chaining over the
// on-disk WAL. ok is false when the position predates what is retained.
func (db *DB) DigestAt(seq uint64) (digest uint64, ok bool) {
	if db.closed.Load() {
		return 0, false
	}
	db.replMu.Lock()
	if seq == db.chainSeq {
		d := db.chainDigest.Load()
		db.replMu.Unlock()
		return d, true
	}
	if db.recent != nil {
		if d, found := db.recent.digestAt(seq); found {
			db.replMu.Unlock()
			return d, true
		}
	}
	db.replMu.Unlock()
	snapSeq := db.snapSeq.Load()
	if seq == snapSeq {
		return db.snapDigest.Load(), true
	}
	if db.opts.Dir == "" || seq < snapSeq || seq > db.seq.Load() {
		return 0, false
	}
	d := db.snapDigest.Load()
	found := false
	_, _, err := scanWal(db.walPath(), func(b walBatch) error {
		if b.seq <= snapSeq {
			return nil
		}
		d = chainStep(d, b.encode())
		if b.seq == seq {
			found = true
			return errScanDone
		}
		return nil
	})
	if err != nil && err != errScanDone {
		return 0, false
	}
	return d, found
}

// SinceWithDigest is Since with each batch's predecessor digest: fn
// receives the chain value at b.Seq-1 alongside the batch, which is
// what a replication frame carries so the replica can verify its local
// chain before applying. The same ErrCompacted contract applies.
func (db *DB) SinceWithDigest(from uint64, max int, fn func(b Batch, prev uint64) error) error {
	if db.closed.Load() {
		return ErrClosed
	}
	if from >= db.Seq() {
		return nil
	}

	db.replMu.Lock()
	ring := db.recent
	var ok bool
	var err error
	if ring != nil {
		ok, err = ring.sinceWithPrev(from, max, fn)
	}
	db.replMu.Unlock()
	if ok {
		return err
	}

	snapSeq := db.snapSeq.Load()
	if db.opts.Dir == "" || from < snapSeq {
		return ErrCompacted
	}
	genBefore := db.walMutGen.Load()
	durable := db.seq.Load()
	prev := db.snapDigest.Load()
	count := 0
	last, _, err := scanWal(db.walPath(), func(b walBatch) error {
		if b.seq <= snapSeq {
			return nil
		}
		payload := b.encode()
		if b.seq <= from {
			prev = chainStep(prev, payload)
			return nil
		}
		if max > 0 && count >= max {
			return errScanDone
		}
		count++
		if err := fn(exportBatch(b), prev); err != nil {
			return err
		}
		prev = chainStep(prev, payload)
		return nil
	})
	if err == errScanDone {
		return nil
	}
	if err != nil {
		return err
	}
	if cerr := db.noteWalScanShort(last, durable, genBefore); cerr != nil {
		return cerr
	}
	return nil
}

// TruncateTail discards every committed batch with Seq > to, rewinding
// the database to an exact earlier point of its own history. It is the
// repair half of divergence recovery: a replica that finds its tail
// forked from the new primary's chain truncates to the last common
// prefix and resumes pulling from there. The discarded batches are
// returned so the caller can quarantine them rather than lose them
// silently. Only durable databases can truncate (the prefix is rebuilt
// from the snapshot plus WAL, with the same frame-boundary cut and
// fsync discipline as Reopen); in-memory stores and positions below the
// compaction floor return ErrCompacted, directing the caller to a full
// snapshot bootstrap instead.
func (db *DB) TruncateTail(to uint64) ([]Batch, error) {
	if db.closed.Load() {
		return nil, ErrClosed
	}
	db.compactMu.Lock()
	defer db.compactMu.Unlock()
	db.commitMu.Lock()
	defer db.commitMu.Unlock()
	db.drainOpenGroupLocked()
	if db.closed.Load() {
		return nil, ErrClosed
	}
	if db.corrupt.Load() {
		return nil, db.corruptErr()
	}
	if db.failed.Load() {
		return nil, db.failedErr()
	}
	cur := db.seq.Load()
	if to == cur {
		return nil, nil
	}
	if to > cur {
		return nil, fmt.Errorf("storedb: truncate tail to %d beyond committed seq %d", to, cur)
	}
	if db.opts.Dir == "" || to < db.snapSeq.Load() {
		return nil, ErrCompacted
	}

	db.walMutGen.Add(1)
	defer db.walMutGen.Add(1)
	if db.wal != nil {
		_ = db.wal.close()
		db.wal = nil
	}
	snap, snapSeq, snapDigest, err := loadSnapshot(db.opts.Dir)
	if err != nil {
		if errors.Is(err, ErrCorrupt) {
			db.markCorrupt(UnitSnapshotBlock, err)
			return nil, db.corruptErr()
		}
		db.fail(err)
		return nil, db.failedErr()
	}
	t := snap
	digest := snapDigest
	last := snapSeq
	var keep int64
	replayed := 0
	var removed []Batch
	_, _, err = scanWalFrames(db.walPath(), func(b walBatch, end int64) error {
		if b.seq <= snapSeq {
			keep = end
			return nil
		}
		if b.seq > to {
			if b.seq <= cur {
				removed = append(removed, exportBatch(b))
			}
			return nil
		}
		for _, op := range b.ops {
			switch op.op {
			case opPut:
				t = t.Put(op.key, op.val)
			case opDelete:
				t, _ = t.Delete(op.key)
			}
		}
		digest = chainStep(digest, b.encode())
		replayed++
		last = b.seq
		keep = end
		return nil
	})
	if err != nil {
		db.fail(err)
		return nil, db.failedErr()
	}
	if last != to {
		db.fail(fmt.Errorf("%w: truncate tail rebuilt seq %d, want %d", ErrCorrupt, last, to))
		return nil, db.failedErr()
	}

	// Cut at the exact frame boundary and make the cut durable, exactly
	// as Reopen does: a truncated batch must never resurrect.
	if info, serr := os.Stat(db.walPath()); serr == nil && info.Size() > keep {
		if terr := os.Truncate(db.walPath(), keep); terr != nil {
			db.fail(fmt.Errorf("storedb: truncate tail: %w", terr))
			return nil, db.failedErr()
		}
		f, oerr := os.OpenFile(db.walPath(), os.O_WRONLY, 0)
		if oerr != nil {
			db.fail(fmt.Errorf("storedb: truncate tail: %w", oerr))
			return nil, db.failedErr()
		}
		serr := fsSync(f, "wal")
		f.Close()
		if serr != nil {
			db.fail(fmt.Errorf("storedb: truncate tail sync: %w", serr))
			return nil, db.failedErr()
		}
	}
	w, err := openWalWriter(db.walPath(), db.opts.SyncWrites)
	if err != nil {
		db.fail(err)
		return nil, db.failedErr()
	}
	if err := fsSyncDir(db.opts.Dir); err != nil {
		_ = w.close()
		db.fail(fmt.Errorf("storedb: truncate tail sync dir: %w", err))
		return nil, db.failedErr()
	}
	db.wal = w

	db.writeMu.Lock()
	db.current.Store(&t)
	db.seq.Store(to)
	db.staged = t
	db.stageSeq = to
	db.writeMu.Unlock()
	db.snapSeq.Store(snapSeq)
	db.snapDigest.Store(snapDigest)
	db.pending = replayed
	db.epoch.Store(epochFromTree(t))

	db.replMu.Lock()
	if db.recent != nil {
		db.recent.truncateTo(to)
	}
	db.chainSeq = to
	db.chainDigest.Store(digest)
	if db.commitC != nil {
		close(db.commitC)
		db.commitC = nil
	}
	db.replMu.Unlock()
	// An op-less batch tells the apply hook the state may have changed
	// wholesale (keys the truncated batches wrote are gone again).
	db.fireApplyHook(Batch{Seq: to})
	return removed, nil
}
