package storedb

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
)

func putKV(t *testing.T, db *DB, key, val string) {
	t.Helper()
	if err := db.Update(func(tx *Tx) error {
		return tx.MustBucket("b").Put([]byte(key), []byte(val))
	}); err != nil {
		t.Fatal(err)
	}
}

func collectSince(t *testing.T, db *DB, from uint64, max int) []Batch {
	t.Helper()
	var out []Batch
	if err := db.Since(from, max, func(b Batch) error {
		out = append(out, b)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestSinceFromRing(t *testing.T) {
	db, err := Open(Options{ReplLogBuffer: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 5; i++ {
		putKV(t, db, fmt.Sprintf("k%d", i), "v")
	}

	got := collectSince(t, db, 2, 0)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("since(2) = %+v", got)
	}
	if got := collectSince(t, db, 5, 0); len(got) != 0 {
		t.Fatalf("since(head) = %+v", got)
	}
	if got := collectSince(t, db, 0, 2); len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("since(0, max 2) = %+v", got)
	}
}

func TestSinceRolledRingReportsCompacted(t *testing.T) {
	db, err := Open(Options{ReplLogBuffer: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 6; i++ {
		putKV(t, db, fmt.Sprintf("k%d", i), "v")
	}
	// Ring holds seqs 5,6 only; an in-memory store has no WAL fallback.
	err = db.Since(1, 0, func(Batch) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("err = %v, want ErrCompacted", err)
	}
	if got := collectSince(t, db, 4, 0); len(got) != 2 {
		t.Fatalf("since(4) = %+v", got)
	}
}

func TestSinceFallsBackToWALFile(t *testing.T) {
	// Ring disabled: Since must read the on-disk WAL.
	db, err := Open(Options{Dir: t.TempDir(), ReplLogBuffer: -1, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for i := 0; i < 4; i++ {
		putKV(t, db, fmt.Sprintf("k%d", i), "v")
	}
	got := collectSince(t, db, 1, 0)
	if len(got) != 3 || got[0].Seq != 2 {
		t.Fatalf("since(1) via WAL = %+v", got)
	}

	// Compaction folds the log into a snapshot; earlier positions are
	// then unservable.
	if err := db.Compact(); err != nil {
		t.Fatal(err)
	}
	err = db.Since(1, 0, func(Batch) error { return nil })
	if !errors.Is(err, ErrCompacted) {
		t.Fatalf("post-compaction err = %v, want ErrCompacted", err)
	}
}

func TestApplyBatchOrdering(t *testing.T) {
	src, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	dst, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dst.Close()

	for i := 0; i < 3; i++ {
		putKV(t, src, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}
	batches := collectSince(t, src, 0, 0)

	// A gap is refused.
	if err := dst.ApplyBatch(batches[1]); !errors.Is(err, ErrSeqGap) {
		t.Fatalf("gap err = %v, want ErrSeqGap", err)
	}
	// In order applies; duplicates are ignored.
	for _, b := range batches {
		if err := dst.ApplyBatch(b); err != nil {
			t.Fatal(err)
		}
	}
	if err := dst.ApplyBatch(batches[1]); err != nil {
		t.Fatalf("duplicate err = %v, want nil", err)
	}
	if dst.Seq() != src.Seq() {
		t.Fatalf("dst seq %d, src %d", dst.Seq(), src.Seq())
	}
	dst.View(func(tx *Tx) error {
		if v, ok := tx.MustBucket("b").Get([]byte("k2")); !ok || string(v) != "v2" {
			t.Fatalf("k2 = %q,%v", v, ok)
		}
		return nil
	})
}

func TestBatchEncodeDecodeRoundTrip(t *testing.T) {
	in := Batch{Seq: 42, Ops: []Op{
		{Key: []byte("b\x00k1"), Val: []byte("v1")},
		{Delete: true, Key: []byte("b\x00k2")},
	}}
	out, err := DecodeBatch(EncodeBatch(in))
	if err != nil {
		t.Fatal(err)
	}
	if out.Seq != 42 || len(out.Ops) != 2 {
		t.Fatalf("round trip = %+v", out)
	}
	if !bytes.Equal(out.Ops[0].Val, []byte("v1")) || !out.Ops[1].Delete {
		t.Fatalf("ops = %+v", out.Ops)
	}
}

func TestSnapshotStreamRoundTrip(t *testing.T) {
	src, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer src.Close()
	for i := 0; i < 10; i++ {
		putKV(t, src, fmt.Sprintf("k%d", i), fmt.Sprintf("v%d", i))
	}

	var buf bytes.Buffer
	seq, err := src.WriteSnapshotTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if seq != src.Seq() {
		t.Fatalf("snapshot seq %d, db %d", seq, src.Seq())
	}

	// Restore into a durable store: state, seq, and durability all land.
	dir := t.TempDir()
	dst, err := Open(Options{Dir: dir, SyncWrites: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := dst.RestoreSnapshotFrom(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got != seq || dst.Seq() != seq || dst.Len() != src.Len() {
		t.Fatalf("restore: got %d seq %d len %d", got, dst.Seq(), dst.Len())
	}
	// Post-restore commits continue the sequence.
	putKV(t, dst, "after", "x")
	if dst.Seq() != seq+1 {
		t.Fatalf("post-restore seq = %d", dst.Seq())
	}
	dst.Close()

	// A reopen recovers the restored snapshot plus the later commit.
	re, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if re.Seq() != seq+1 || re.Len() != src.Len()+1 {
		t.Fatalf("reopen: seq %d len %d", re.Seq(), re.Len())
	}

	// A corrupted stream is rejected wholesale.
	bad := append([]byte(nil), buf.Bytes()...)
	bad[len(bad)/2] ^= 0xFF
	fresh, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer fresh.Close()
	if _, err := fresh.RestoreSnapshotFrom(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt restore err = %v, want ErrCorrupt", err)
	}
	if fresh.Len() != 0 {
		t.Fatal("corrupt snapshot partially installed")
	}
}

func TestRingSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, ReplLogBuffer: 16, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		putKV(t, db, fmt.Sprintf("k%d", i), "v")
	}
	db.Close()

	// Reopen repopulates the ring from the WAL so replicas can resume
	// from memory after a primary restart.
	db2, err := Open(Options{Dir: dir, ReplLogBuffer: 16, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if floor, ok := db2.ringFloorForTest(); !ok || floor != 1 {
		t.Fatalf("ring floor after reopen = %d,%v", floor, ok)
	}
	if got := collectSince(t, db2, 2, 0); len(got) != 2 || got[0].Seq != 3 {
		t.Fatalf("since(2) after reopen = %+v", got)
	}
}
