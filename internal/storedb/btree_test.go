package storedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func key(i int) []byte { return []byte(fmt.Sprintf("key-%06d", i)) }
func val(i int) []byte { return []byte(fmt.Sprintf("val-%06d", i)) }

func TestTreeEmpty(t *testing.T) {
	var tr tree
	if tr.Len() != 0 {
		t.Fatalf("empty tree Len = %d, want 0", tr.Len())
	}
	if _, ok := tr.Get([]byte("x")); ok {
		t.Fatal("Get on empty tree reported a hit")
	}
	tr.Ascend(nil, nil, func(k, v []byte) bool {
		t.Fatal("Ascend on empty tree visited a pair")
		return false
	})
	if next, found := tr.Delete([]byte("x")); found || next.Len() != 0 {
		t.Fatal("Delete on empty tree claimed success")
	}
}

func TestTreePutGet(t *testing.T) {
	var tr tree
	const n = 1000
	for i := 0; i < n; i++ {
		tr = tr.Put(key(i), val(i))
	}
	if tr.Len() != n {
		t.Fatalf("Len = %d, want %d", tr.Len(), n)
	}
	for i := 0; i < n; i++ {
		got, ok := tr.Get(key(i))
		if !ok || !bytes.Equal(got, val(i)) {
			t.Fatalf("Get(%s) = %q, %v", key(i), got, ok)
		}
	}
	if _, ok := tr.Get([]byte("missing")); ok {
		t.Fatal("Get reported a hit for a missing key")
	}
}

func TestTreeOverwrite(t *testing.T) {
	var tr tree
	tr = tr.Put([]byte("k"), []byte("v1"))
	tr = tr.Put([]byte("k"), []byte("v2"))
	if tr.Len() != 1 {
		t.Fatalf("Len after overwrite = %d, want 1", tr.Len())
	}
	got, _ := tr.Get([]byte("k"))
	if string(got) != "v2" {
		t.Fatalf("Get = %q, want v2", got)
	}
}

func TestTreeImmutability(t *testing.T) {
	var t0 tree
	for i := 0; i < 200; i++ {
		t0 = t0.Put(key(i), val(i))
	}
	t1 := t0.Put(key(500), val(500))
	t2, found := t0.Delete(key(100))
	if !found {
		t.Fatal("Delete missed an existing key")
	}

	// The original snapshot is unaffected by either descendant.
	if t0.Len() != 200 {
		t.Fatalf("t0.Len = %d, want 200", t0.Len())
	}
	if _, ok := t0.Get(key(500)); ok {
		t.Fatal("t0 sees key added to t1")
	}
	if _, ok := t0.Get(key(100)); !ok {
		t.Fatal("t0 lost key deleted from t2")
	}
	if _, ok := t1.Get(key(500)); !ok {
		t.Fatal("t1 lost its own insert")
	}
	if _, ok := t2.Get(key(100)); ok {
		t.Fatal("t2 still sees its own delete")
	}
}

func TestTreeOrderedIteration(t *testing.T) {
	var tr tree
	perm := rand.New(rand.NewSource(1)).Perm(500)
	for _, i := range perm {
		tr = tr.Put(key(i), val(i))
	}
	var got [][]byte
	tr.Ascend(nil, nil, func(k, v []byte) bool {
		got = append(got, append([]byte(nil), k...))
		return true
	})
	if len(got) != 500 {
		t.Fatalf("visited %d keys, want 500", len(got))
	}
	for i := 1; i < len(got); i++ {
		if bytes.Compare(got[i-1], got[i]) >= 0 {
			t.Fatalf("iteration out of order at %d: %s >= %s", i, got[i-1], got[i])
		}
	}
}

func TestTreeRangeBounds(t *testing.T) {
	var tr tree
	for i := 0; i < 100; i++ {
		tr = tr.Put(key(i), val(i))
	}
	var visited []string
	tr.Ascend(key(10), key(20), func(k, v []byte) bool {
		visited = append(visited, string(k))
		return true
	})
	if len(visited) != 10 {
		t.Fatalf("range visited %d keys, want 10: %v", len(visited), visited)
	}
	if visited[0] != string(key(10)) || visited[9] != string(key(19)) {
		t.Fatalf("range bounds wrong: first=%s last=%s", visited[0], visited[9])
	}
}

func TestTreeAscendEarlyStop(t *testing.T) {
	var tr tree
	for i := 0; i < 100; i++ {
		tr = tr.Put(key(i), val(i))
	}
	count := 0
	tr.Ascend(nil, nil, func(k, v []byte) bool {
		count++
		return count < 7
	})
	if count != 7 {
		t.Fatalf("early stop visited %d, want 7", count)
	}
}

func TestTreeDeleteAll(t *testing.T) {
	var tr tree
	const n = 777 // enough for several levels
	for i := 0; i < n; i++ {
		tr = tr.Put(key(i), val(i))
	}
	if d := tr.depth(); d < 2 {
		t.Fatalf("tree depth = %d, want >= 2 to exercise rebalancing", d)
	}
	// Delete in an order that exercises merges from both ends.
	order := rand.New(rand.NewSource(2)).Perm(n)
	for idx, i := range order {
		var found bool
		tr, found = tr.Delete(key(i))
		if !found {
			t.Fatalf("Delete(%s) missed", key(i))
		}
		if tr.Len() != n-idx-1 {
			t.Fatalf("Len = %d after %d deletes", tr.Len(), idx+1)
		}
	}
	if tr.root != nil {
		t.Fatal("root not nil after deleting everything")
	}
}

func TestTreeDeleteMissing(t *testing.T) {
	var tr tree
	for i := 0; i < 50; i++ {
		tr = tr.Put(key(i), val(i))
	}
	next, found := tr.Delete([]byte("nope"))
	if found {
		t.Fatal("Delete of a missing key reported found")
	}
	if next.Len() != 50 {
		t.Fatalf("Len changed on missing delete: %d", next.Len())
	}
}

// checkInvariants walks the tree verifying structural invariants: key
// order within nodes, router separation, fill constraints (except root)
// and uniform leaf depth.
func checkInvariants(t *testing.T, tr tree) {
	t.Helper()
	if tr.root == nil {
		return
	}
	leafDepth := -1
	var walk func(n *node, depth int, lo, hi []byte)
	walk = func(n *node, depth int, lo, hi []byte) {
		for i := 1; i < len(n.keys); i++ {
			if bytes.Compare(n.keys[i-1], n.keys[i]) >= 0 {
				t.Fatalf("node keys out of order at depth %d", depth)
			}
		}
		for _, k := range n.keys {
			if lo != nil && bytes.Compare(k, lo) < 0 {
				t.Fatalf("key below subtree bound at depth %d", depth)
			}
			if hi != nil && bytes.Compare(k, hi) >= 0 {
				t.Fatalf("key above subtree bound at depth %d", depth)
			}
		}
		if n.leaf {
			if leafDepth == -1 {
				leafDepth = depth
			} else if leafDepth != depth {
				t.Fatalf("leaves at different depths: %d and %d", leafDepth, depth)
			}
			if depth > 0 && len(n.keys) < minLeafItems {
				t.Fatalf("non-root leaf underfull: %d items", len(n.keys))
			}
			if len(n.keys) > maxLeafItems {
				t.Fatalf("leaf overfull: %d items", len(n.keys))
			}
			if len(n.vals) != len(n.keys) {
				t.Fatal("leaf keys/vals length mismatch")
			}
			return
		}
		if len(n.children) != len(n.keys)+1 {
			t.Fatalf("internal node has %d children for %d keys", len(n.children), len(n.keys))
		}
		if depth > 0 && len(n.children) < minChildren {
			t.Fatalf("non-root internal underfull: %d children", len(n.children))
		}
		if len(n.children) > maxChildren {
			t.Fatalf("internal overfull: %d children", len(n.children))
		}
		for i, c := range n.children {
			cLo, cHi := lo, hi
			if i > 0 {
				cLo = n.keys[i-1]
			}
			if i < len(n.keys) {
				cHi = n.keys[i]
			}
			walk(c, depth+1, cLo, cHi)
		}
	}
	walk(tr.root, 0, nil, nil)
}

// TestTreeModelCheck drives random operations against the tree and a map
// model simultaneously, checking agreement and invariants throughout.
func TestTreeModelCheck(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	var tr tree
	model := map[string]string{}

	const ops = 20000
	for i := 0; i < ops; i++ {
		k := fmt.Sprintf("k%04d", rng.Intn(3000))
		switch rng.Intn(3) {
		case 0, 1: // put twice as often as delete, so the tree grows
			v := fmt.Sprintf("v%d", i)
			tr = tr.Put([]byte(k), []byte(v))
			model[k] = v
		case 2:
			var found bool
			tr, found = tr.Delete([]byte(k))
			_, inModel := model[k]
			if found != inModel {
				t.Fatalf("op %d: Delete(%s) found=%v, model=%v", i, k, found, inModel)
			}
			delete(model, k)
		}
		if tr.Len() != len(model) {
			t.Fatalf("op %d: Len=%d model=%d", i, tr.Len(), len(model))
		}
		if i%997 == 0 {
			checkInvariants(t, tr)
		}
	}
	checkInvariants(t, tr)

	// Final agreement: every model key present with the right value, and
	// iteration yields exactly the sorted model.
	keys := make([]string, 0, len(model))
	for k := range model {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	i := 0
	tr.Ascend(nil, nil, func(k, v []byte) bool {
		if string(k) != keys[i] {
			t.Fatalf("iteration key %d = %s, want %s", i, k, keys[i])
		}
		if string(v) != model[keys[i]] {
			t.Fatalf("iteration value for %s = %s, want %s", k, v, model[keys[i]])
		}
		i++
		return true
	})
	if i != len(keys) {
		t.Fatalf("iterated %d keys, want %d", i, len(keys))
	}
}

// TestTreeQuickGetAfterPut is a property test: for arbitrary key/value
// pairs, Put then Get round-trips.
func TestTreeQuickGetAfterPut(t *testing.T) {
	f := func(pairs map[string]string) bool {
		var tr tree
		for k, v := range pairs {
			if k == "" {
				continue
			}
			tr = tr.Put([]byte(k), []byte(v))
		}
		for k, v := range pairs {
			if k == "" {
				continue
			}
			got, ok := tr.Get([]byte(k))
			if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// TestTreeQuickDeleteRestores is a property test: inserting a set then
// deleting a subset leaves exactly the complement.
func TestTreeQuickDeleteRestores(t *testing.T) {
	f := func(add map[string]string, del []string) bool {
		var tr tree
		for k, v := range add {
			if k == "" {
				continue
			}
			tr = tr.Put([]byte(k), []byte(v))
		}
		for _, k := range del {
			tr, _ = tr.Delete([]byte(k))
		}
		deleted := map[string]bool{}
		for _, k := range del {
			deleted[k] = true
		}
		for k, v := range add {
			if k == "" {
				continue
			}
			got, ok := tr.Get([]byte(k))
			if deleted[k] {
				if ok {
					return false
				}
			} else if !ok || string(got) != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestTreeSequentialAndReverseInsert(t *testing.T) {
	for _, dir := range []string{"forward", "reverse"} {
		var tr tree
		const n = 2000
		for i := 0; i < n; i++ {
			j := i
			if dir == "reverse" {
				j = n - 1 - i
			}
			tr = tr.Put(key(j), val(j))
		}
		checkInvariants(t, tr)
		if tr.Len() != n {
			t.Fatalf("%s: Len = %d", dir, tr.Len())
		}
	}
}

func BenchmarkTreePut(b *testing.B) {
	var tr tree
	for i := 0; i < b.N; i++ {
		tr = tr.Put(key(i%100000), val(i))
	}
}

func BenchmarkTreeGet(b *testing.B) {
	var tr tree
	for i := 0; i < 100000; i++ {
		tr = tr.Put(key(i), val(i))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Get(key(i % 100000))
	}
}
