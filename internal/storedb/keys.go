package storedb

import (
	"encoding/binary"
	"errors"
	"math"
)

// Ordered key encoding. Composite keys for tables and secondary indexes
// are built by appending encoded components; the encoding guarantees that
// bytewise comparison of encoded keys matches component-wise comparison
// of the values, which is what makes range scans over index prefixes
// correct.

// AppendUint64 appends v in big-endian order, which sorts numerically.
func AppendUint64(dst []byte, v uint64) []byte {
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], v)
	return append(dst, buf[:]...)
}

// TakeUint64 decodes a component written by AppendUint64 and returns the
// remaining bytes.
func TakeUint64(src []byte) (uint64, []byte, error) {
	if len(src) < 8 {
		return 0, nil, errors.New("storedb: short uint64 key component")
	}
	return binary.BigEndian.Uint64(src[:8]), src[8:], nil
}

// AppendInt64 appends v so that signed values sort correctly: the sign
// bit is flipped before big-endian encoding.
func AppendInt64(dst []byte, v int64) []byte {
	return AppendUint64(dst, uint64(v)^(1<<63))
}

// TakeInt64 decodes a component written by AppendInt64.
func TakeInt64(src []byte) (int64, []byte, error) {
	u, rest, err := TakeUint64(src)
	if err != nil {
		return 0, nil, err
	}
	return int64(u ^ (1 << 63)), rest, nil
}

// AppendFloat64 appends v with an order-preserving transform of its IEEE
// 754 bits: non-negative values get the sign bit set; negative values are
// bitwise inverted.
func AppendFloat64(dst []byte, v float64) []byte {
	bits := math.Float64bits(v)
	if bits&(1<<63) != 0 {
		bits = ^bits
	} else {
		bits |= 1 << 63
	}
	return AppendUint64(dst, bits)
}

// TakeFloat64 decodes a component written by AppendFloat64.
func TakeFloat64(src []byte) (float64, []byte, error) {
	u, rest, err := TakeUint64(src)
	if err != nil {
		return 0, nil, err
	}
	if u&(1<<63) != 0 {
		u &^= 1 << 63
	} else {
		u = ^u
	}
	return math.Float64frombits(u), rest, nil
}

// AppendString appends s with 0x00 bytes escaped as 0x00 0xFF and a
// 0x00 0x00 terminator. The escaping keeps bytewise order identical to
// string order while letting a composite key continue after the string.
func AppendString(dst []byte, s string) []byte {
	for i := 0; i < len(s); i++ {
		if s[i] == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, s[i])
		}
	}
	return append(dst, 0x00, 0x00)
}

// TakeString decodes a component written by AppendString.
func TakeString(src []byte) (string, []byte, error) {
	var out []byte
	for i := 0; i < len(src); i++ {
		if src[i] != 0x00 {
			out = append(out, src[i])
			continue
		}
		if i+1 >= len(src) {
			return "", nil, errors.New("storedb: truncated string key component")
		}
		switch src[i+1] {
		case 0x00:
			return string(out), src[i+2:], nil
		case 0xFF:
			out = append(out, 0x00)
			i++
		default:
			return "", nil, errors.New("storedb: bad escape in string key component")
		}
	}
	return "", nil, errors.New("storedb: unterminated string key component")
}

// AppendBytes appends raw bytes with the same escaping as AppendString.
func AppendBytes(dst, b []byte) []byte {
	for _, c := range b {
		if c == 0x00 {
			dst = append(dst, 0x00, 0xFF)
		} else {
			dst = append(dst, c)
		}
	}
	return append(dst, 0x00, 0x00)
}

// TakeBytes decodes a component written by AppendBytes.
func TakeBytes(src []byte) ([]byte, []byte, error) {
	s, rest, err := TakeString(src)
	return []byte(s), rest, err
}

// PrefixEnd returns the smallest key that is greater than every key with
// the given prefix, suitable as the exclusive upper bound of a range
// scan. It returns nil (unbounded) when the prefix is all 0xFF.
func PrefixEnd(prefix []byte) []byte {
	end := append([]byte(nil), prefix...)
	for i := len(end) - 1; i >= 0; i-- {
		if end[i] != 0xFF {
			end[i]++
			return end[:i+1]
		}
	}
	return nil
}
