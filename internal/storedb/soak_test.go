package storedb

import (
	"bytes"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"
)

// TestDBConcurrentCompaction runs readers, a writer and periodic
// compactions together: readers must always observe consistent
// snapshots and the final state must survive a reopen.
func TestDBConcurrentCompaction(t *testing.T) {
	dir := t.TempDir()
	db, err := Open(Options{Dir: dir, CompactEvery: -1})
	if err != nil {
		t.Fatal(err)
	}

	const writes = 400
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				err := db.View(func(tx *Tx) error {
					b := tx.MustBucket("soak")
					prev := -1
					ok := true
					b.ForEach(func(k, v []byte) bool {
						// Keys are zero-padded integers; values repeat the
						// key. Within one snapshot both invariants hold.
						if !bytes.Equal(k, v) {
							ok = false
							return false
						}
						n := parseInt(k)
						if n <= prev {
							ok = false
							return false
						}
						prev = n
						return true
					})
					if !ok {
						return fmt.Errorf("inconsistent snapshot")
					}
					return nil
				})
				if err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writes/10; i++ {
			if err := db.Compact(); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	for i := 0; i < writes; i++ {
		key := []byte(fmt.Sprintf("%06d", i))
		err := db.Update(func(tx *Tx) error {
			return tx.MustBucket("soak").Put(key, key)
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()

	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if db2.Len() != writes {
		t.Fatalf("recovered %d keys, want %d", db2.Len(), writes)
	}
}

func parseInt(b []byte) int {
	n := 0
	for _, c := range b {
		n = n*10 + int(c-'0')
	}
	return n
}

// TestDBReopenSoak interleaves writes, deletes, compactions and reopens
// against a map model.
func TestDBReopenSoak(t *testing.T) {
	dir := t.TempDir()
	model := map[string]string{}
	rng := rand.New(rand.NewSource(77))

	for round := 0; round < 6; round++ {
		db, err := Open(Options{Dir: dir, CompactEvery: 25})
		if err != nil {
			t.Fatalf("round %d: %v", round, err)
		}
		// Verify the model first.
		err = db.View(func(tx *Tx) error {
			b := tx.MustBucket("soak")
			count := 0
			var verr error
			b.ForEach(func(k, v []byte) bool {
				count++
				if model[string(k)] != string(v) {
					verr = fmt.Errorf("round %d: key %s = %q, model %q", round, k, v, model[string(k)])
					return false
				}
				return true
			})
			if verr != nil {
				return verr
			}
			if count != len(model) {
				return fmt.Errorf("round %d: %d keys, model %d", round, count, len(model))
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}

		// Mutate.
		for i := 0; i < 120; i++ {
			k := fmt.Sprintf("k%03d", rng.Intn(300))
			if rng.Intn(4) == 0 {
				err := db.Update(func(tx *Tx) error {
					return tx.MustBucket("soak").Delete([]byte(k))
				})
				if err != nil {
					t.Fatal(err)
				}
				delete(model, k)
			} else {
				v := fmt.Sprintf("r%d-%d", round, i)
				err := db.Update(func(tx *Tx) error {
					return tx.MustBucket("soak").Put([]byte(k), []byte(v))
				})
				if err != nil {
					t.Fatal(err)
				}
				model[k] = v
			}
		}
		if round%2 == 1 {
			if err := db.Compact(); err != nil {
				t.Fatal(err)
			}
		}
		if err := db.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestWalBatchQuickRoundTrip property-tests the WAL batch codec.
func TestWalBatchQuickRoundTrip(t *testing.T) {
	f := func(seq uint64, rawOps [][2][]byte, deletes []bool) bool {
		b := walBatch{seq: seq}
		for i, kv := range rawOps {
			op := walOp{op: opPut, key: kv[0], val: kv[1]}
			if i < len(deletes) && deletes[i] {
				op = walOp{op: opDelete, key: kv[0]}
			}
			b.ops = append(b.ops, op)
		}
		dec, err := decodeWalBatch(b.encode())
		if err != nil {
			return false
		}
		if dec.seq != seq || len(dec.ops) != len(b.ops) {
			return false
		}
		for i := range b.ops {
			if dec.ops[i].op != b.ops[i].op {
				return false
			}
			if !bytes.Equal(dec.ops[i].key, b.ops[i].key) {
				return false
			}
			if b.ops[i].op == opPut && !bytes.Equal(dec.ops[i].val, b.ops[i].val) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// TestBucketRangeEdgeCases checks explicit bound handling.
func TestBucketRangeEdgeCases(t *testing.T) {
	db, err := Open(Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	err = db.Update(func(tx *Tx) error {
		b := tx.MustBucket("r")
		for _, k := range []string{"a", "b", "c", "d"} {
			if err := b.Put([]byte(k), []byte(k)); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}

	collect := func(lo, hi []byte) []string {
		var out []string
		db.View(func(tx *Tx) error {
			tx.MustBucket("r").Range(lo, hi, func(k, v []byte) bool {
				out = append(out, string(k))
				return true
			})
			return nil
		})
		return out
	}

	if got := collect([]byte("b"), []byte("d")); len(got) != 2 || got[0] != "b" || got[1] != "c" {
		t.Fatalf("range [b,d) = %v", got)
	}
	if got := collect(nil, []byte("b")); len(got) != 1 || got[0] != "a" {
		t.Fatalf("range [nil,b) = %v", got)
	}
	if got := collect([]byte("c"), nil); len(got) != 2 || got[0] != "c" {
		t.Fatalf("range [c,nil) = %v", got)
	}
	if got := collect([]byte("x"), nil); len(got) != 0 {
		t.Fatalf("empty range = %v", got)
	}
	// RangePrefix with a shared prefix.
	db.Update(func(tx *Tx) error {
		b := tx.MustBucket("r")
		b.Put([]byte("pre-1"), nil)
		b.Put([]byte("pre-2"), nil)
		b.Put([]byte("prf"), nil)
		return nil
	})
	var pre []string
	db.View(func(tx *Tx) error {
		tx.MustBucket("r").RangePrefix([]byte("pre"), func(k, v []byte) bool {
			pre = append(pre, string(k))
			return true
		})
		return nil
	})
	if len(pre) != 2 {
		t.Fatalf("prefix range = %v", pre)
	}
}
