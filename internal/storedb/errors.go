package storedb

import "errors"

var (
	// ErrClosed is returned by operations on a closed database.
	ErrClosed = errors.New("storedb: database is closed")

	// ErrTxClosed is returned when a transaction is used after it ended.
	ErrTxClosed = errors.New("storedb: transaction has ended")

	// ErrReadOnly is returned when a write is attempted in a View
	// transaction.
	ErrReadOnly = errors.New("storedb: write in read-only transaction")

	// ErrCorrupt is returned when a snapshot or WAL file fails its
	// integrity checks beyond the recoverable tail of the log.
	ErrCorrupt = errors.New("storedb: corrupt database file")

	// ErrBucketName is returned for invalid bucket names. Names must be
	// non-empty and must not contain the NUL byte, which terminates the
	// bucket prefix in the key space.
	ErrBucketName = errors.New("storedb: invalid bucket name")

	// ErrEmptyKey is returned when an empty key is written.
	ErrEmptyKey = errors.New("storedb: empty key")

	// ErrCompacted is returned by Since when the requested batches are
	// older than both the in-memory tail ring and the on-disk WAL —
	// compaction has folded them into a snapshot, so the caller must
	// bootstrap from a snapshot stream instead.
	ErrCompacted = errors.New("storedb: requested batches already compacted")

	// ErrSeqGap is returned by ApplyBatch when the incoming batch does
	// not directly follow the last applied sequence number — the stream
	// skipped something, and applying it would silently fork history.
	ErrSeqGap = errors.New("storedb: replication sequence gap")

	// ErrReplica is returned by Update while the database is in replica
	// mode: replicas change only by applying the primary's batches, so
	// local writes are refused rather than silently forking the replica.
	ErrReplica = errors.New("storedb: database is in replica mode (read-only)")

	// ErrFenced is returned by Update while the database is fenced: a
	// higher promotion epoch has been observed somewhere in the cluster,
	// so this node's primary role is stale and acking further writes
	// would fork history. The state is sticky, like ErrStorageFailed;
	// reads keep serving. BumpEpoch (taking over at a yet-higher epoch)
	// or Unfence (operator action after demotion) clear it.
	ErrFenced = errors.New("storedb: fenced by a higher promotion epoch (read-only)")

	// ErrStorageFailed is returned by write operations after a WAL
	// append, fsync, truncate, or compaction error has moved the
	// database into its sticky failed state. The state of the log is no
	// longer trustworthy for appends, so the database refuses every
	// write until Reopen has replayed and verified the durable state.
	// Reads keep serving the last committed tree throughout.
	ErrStorageFailed = errors.New("storedb: storage failed (read-only until reopen)")

	// ErrStorageCorrupt is returned by write operations after a
	// checksum verification — a scrub pass, a snapshot block, or a WAL
	// frame below the acknowledged sequence — found bytes that read
	// back cleanly but are wrong. It is distinct from ErrStorageFailed:
	// a failed store has a log whose append state is untrustworthy and
	// Reopen re-verifies it, while a corrupt store has durable data
	// that is provably damaged, so Reopen cannot help. Reads keep
	// serving the in-memory tree; the way back to writable is
	// QuarantineCorrupt (preserving the damaged files) followed by
	// RestoreSnapshotFrom with a verified replacement — in production,
	// replication.Repairer drives exactly that from a healthy replica.
	ErrStorageCorrupt = errors.New("storedb: storage corrupt (read-only until repaired)")

	// ErrQuarantineRequired is returned by RestoreSnapshotFrom on a
	// corrupt store whose damaged files have not been quarantined yet.
	// Overwriting them would destroy the corruption evidence; callers
	// must QuarantineCorrupt first.
	ErrQuarantineRequired = errors.New("storedb: corrupt files must be quarantined before restore")
)
