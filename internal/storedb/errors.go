package storedb

import "errors"

var (
	// ErrClosed is returned by operations on a closed database.
	ErrClosed = errors.New("storedb: database is closed")

	// ErrTxClosed is returned when a transaction is used after it ended.
	ErrTxClosed = errors.New("storedb: transaction has ended")

	// ErrReadOnly is returned when a write is attempted in a View
	// transaction.
	ErrReadOnly = errors.New("storedb: write in read-only transaction")

	// ErrCorrupt is returned when a snapshot or WAL file fails its
	// integrity checks beyond the recoverable tail of the log.
	ErrCorrupt = errors.New("storedb: corrupt database file")

	// ErrBucketName is returned for invalid bucket names. Names must be
	// non-empty and must not contain the NUL byte, which terminates the
	// bucket prefix in the key space.
	ErrBucketName = errors.New("storedb: invalid bucket name")

	// ErrEmptyKey is returned when an empty key is written.
	ErrEmptyKey = errors.New("storedb: empty key")
)
