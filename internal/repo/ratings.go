package repo

import (
	"encoding/binary"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// Rating, comment and remark storage. The rating table is keyed
// (software, username) so the one-vote rule is a primary-key constraint,
// with a (username, software) secondary index for per-user listings.

const (
	ratingRecordVersion  = 1
	commentRecordVersion = 1
	remarkRecordVersion  = 1
)

func ratingKey(id core.SoftwareID, username string) []byte {
	k := append([]byte(nil), id[:]...)
	return storedb.AppendString(k, username)
}

func ratingUserKey(username string, id core.SoftwareID) []byte {
	k := storedb.AppendString(nil, username)
	return append(k, id[:]...)
}

func encodeRating(r core.Rating, commentID uint64) []byte {
	e := newEncoder(ratingRecordVersion)
	e.putInt64(int64(r.Score))
	e.putUint64(uint64(r.Behaviors))
	e.putTime(r.At)
	e.putUint64(commentID)
	return e.bytes()
}

func decodeRating(data []byte, id core.SoftwareID, username string) (core.Rating, uint64, error) {
	r := core.Rating{UserID: username, Software: id}
	d, err := newDecoder(data, ratingRecordVersion)
	if err != nil {
		return r, 0, err
	}
	score, err := d.int64()
	if err != nil {
		return r, 0, err
	}
	r.Score = int(score)
	behaviors, err := d.uint64()
	if err != nil {
		return r, 0, err
	}
	r.Behaviors = core.Behavior(behaviors)
	if r.At, err = d.time(); err != nil {
		return r, 0, err
	}
	commentID, err := d.uint64()
	if err != nil {
		return r, 0, err
	}
	return r, commentID, d.finish()
}

func encodeComment(c core.Comment) []byte {
	e := newEncoder(commentRecordVersion)
	e.putUint64(c.ID)
	e.putString(c.UserID)
	e.putBytes(c.Software[:])
	e.putString(c.Text)
	e.putTime(c.At)
	e.putInt64(int64(c.Positive))
	e.putInt64(int64(c.Negative))
	e.putBool(c.Hidden)
	return e.bytes()
}

func decodeComment(data []byte) (core.Comment, error) {
	var c core.Comment
	d, err := newDecoder(data, commentRecordVersion)
	if err != nil {
		return c, err
	}
	if c.ID, err = d.uint64(); err != nil {
		return c, err
	}
	if c.UserID, err = d.string(); err != nil {
		return c, err
	}
	sw, err := d.bytesField()
	if err != nil {
		return c, err
	}
	copy(c.Software[:], sw)
	if c.Text, err = d.string(); err != nil {
		return c, err
	}
	if c.At, err = d.time(); err != nil {
		return c, err
	}
	pos, err := d.int64()
	if err != nil {
		return c, err
	}
	neg, err := d.int64()
	if err != nil {
		return c, err
	}
	c.Positive, c.Negative = int(pos), int(neg)
	if c.Hidden, err = d.bool(); err != nil {
		return c, err
	}
	return c, d.finish()
}

func commentKey(id uint64) []byte {
	var k [8]byte
	binary.BigEndian.PutUint64(k[:], id)
	return k[:]
}

// AddRating stores one user's vote on one executable, enforcing the
// one-vote rule, and attaches a comment when text is non-empty. It
// returns the new comment's ID (0 when no comment was attached).
// The referenced user and software must already exist.
func (s *Store) AddRating(r core.Rating, commentText string) (uint64, error) {
	if err := core.ValidateScore(r.Score); err != nil {
		return 0, err
	}
	var commentID uint64
	err := s.db.Update(func(tx *storedb.Tx) error {
		if _, ok := tx.MustBucket(bucketUsers).Get([]byte(r.UserID)); !ok {
			return ErrUserNotFound
		}
		if _, ok := tx.MustBucket(bucketSoftware).Get(r.Software[:]); !ok {
			return ErrSoftwareNotFound
		}
		ratings := tx.MustBucket(bucketRatings)
		rk := ratingKey(r.Software, r.UserID)
		if _, dup := ratings.Get(rk); dup {
			return ErrAlreadyRated
		}

		if commentText != "" {
			id, err := s.nextCommentID(tx)
			if err != nil {
				return err
			}
			commentID = id
			c := core.Comment{
				ID:       id,
				UserID:   r.UserID,
				Software: r.Software,
				Text:     commentText,
				At:       r.At,
			}
			if err := tx.MustBucket(bucketComments).Put(commentKey(id), encodeComment(c)); err != nil {
				return err
			}
			csKey := append(append([]byte(nil), r.Software[:]...), commentKey(id)...)
			if err := tx.MustBucket(bucketCommentsByS).Put(csKey, nil); err != nil {
				return err
			}
		}

		if err := ratings.Put(rk, encodeRating(r, commentID)); err != nil {
			return err
		}
		if err := markSoftwareDirty(tx, r.Software); err != nil {
			return err
		}
		return tx.MustBucket(bucketRatingsByU).Put(ratingUserKey(r.UserID, r.Software), nil)
	})
	if err != nil {
		return 0, err
	}
	return commentID, nil
}

// nextCommentID allocates a monotonically increasing comment ID inside
// an open write transaction.
func (s *Store) nextCommentID(tx *storedb.Tx) (uint64, error) {
	meta := tx.MustBucket(bucketMeta)
	var next uint64 = 1
	if v, ok := meta.Get([]byte("nextCommentID")); ok && len(v) == 8 {
		next = binary.BigEndian.Uint64(v)
	}
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], next+1)
	if err := meta.Put([]byte("nextCommentID"), buf[:]); err != nil {
		return 0, err
	}
	return next, nil
}

// GetRating fetches one user's vote on one executable.
func (s *Store) GetRating(id core.SoftwareID, username string) (core.Rating, bool, error) {
	var r core.Rating
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketRatings).Get(ratingKey(id, username))
		if !ok {
			return nil
		}
		var derr error
		r, _, derr = decodeRating(data, id, username)
		found = derr == nil
		return derr
	})
	return r, found, err
}

// RatingsForSoftware returns every vote on one executable.
func (s *Store) RatingsForSoftware(id core.SoftwareID) ([]core.Rating, error) {
	var out []core.Rating
	err := s.db.View(func(tx *storedb.Tx) error {
		var derr error
		tx.MustBucket(bucketRatings).RangePrefix(id[:], func(k, v []byte) bool {
			username, _, err := storedb.TakeString(k[len(id):])
			if err != nil {
				derr = err
				return false
			}
			r, _, err := decodeRating(v, id, username)
			if err != nil {
				derr = err
				return false
			}
			out = append(out, r)
			return true
		})
		return derr
	})
	return out, err
}

// SoftwareRatedBy returns the identities of every executable a user has
// voted on, via the secondary index.
func (s *Store) SoftwareRatedBy(username string) ([]core.SoftwareID, error) {
	var out []core.SoftwareID
	prefix := storedb.AppendString(nil, username)
	err := s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketRatingsByU).RangePrefix(prefix, func(k, _ []byte) bool {
			var id core.SoftwareID
			copy(id[:], k[len(prefix):])
			out = append(out, id)
			return true
		})
		return nil
	})
	return out, err
}

// GetComment fetches a comment by ID.
func (s *Store) GetComment(id uint64) (core.Comment, bool, error) {
	var c core.Comment
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketComments).Get(commentKey(id))
		if !ok {
			return nil
		}
		var derr error
		c, derr = decodeComment(data)
		found = derr == nil
		return derr
	})
	return c, found, err
}

// CommentsForSoftware returns every comment on one executable in
// submission order.
func (s *Store) CommentsForSoftware(id core.SoftwareID) ([]core.Comment, error) {
	var out []core.Comment
	err := s.db.View(func(tx *storedb.Tx) error {
		comments := tx.MustBucket(bucketComments)
		var derr error
		tx.MustBucket(bucketCommentsByS).RangePrefix(id[:], func(k, _ []byte) bool {
			data, ok := comments.Get(k[len(id):])
			if !ok {
				return true // index points at a vanished comment: skip
			}
			c, err := decodeComment(data)
			if err != nil {
				derr = err
				return false
			}
			out = append(out, c)
			return true
		})
		return derr
	})
	return out, err
}

// SetCommentHidden flips a comment's moderation state.
func (s *Store) SetCommentHidden(id uint64, hidden bool) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		comments := tx.MustBucket(bucketComments)
		data, ok := comments.Get(commentKey(id))
		if !ok {
			return ErrCommentNotFound
		}
		c, err := decodeComment(data)
		if err != nil {
			return err
		}
		c.Hidden = hidden
		return comments.Put(commentKey(id), encodeComment(c))
	})
}

// PendingComments lists every hidden comment, oldest first — the
// moderation queue of §2.1's administrator approach.
func (s *Store) PendingComments() ([]core.Comment, error) {
	var out []core.Comment
	err := s.db.View(func(tx *storedb.Tx) error {
		var derr error
		tx.MustBucket(bucketComments).ForEach(func(_, v []byte) bool {
			c, err := decodeComment(v)
			if err != nil {
				derr = err
				return false
			}
			if c.Hidden {
				out = append(out, c)
			}
			return true
		})
		return derr
	})
	return out, err
}

func remarkKey(commentID uint64, username string) []byte {
	k := commentKey(commentID)
	return storedb.AppendString(k, username)
}

// AddRemark records one user's judgement of a comment, enforcing one
// remark per user per comment and forbidding self-remarks. It updates
// the comment's counters and returns the comment author's username so
// the caller can adjust that author's trust factor.
func (s *Store) AddRemark(r core.Remark) (author string, err error) {
	err = s.db.Update(func(tx *storedb.Tx) error {
		comments := tx.MustBucket(bucketComments)
		data, ok := comments.Get(commentKey(r.CommentID))
		if !ok {
			return ErrCommentNotFound
		}
		c, err := decodeComment(data)
		if err != nil {
			return err
		}
		if c.UserID == r.UserID {
			return ErrSelfRemark
		}
		remarks := tx.MustBucket(bucketRemarks)
		rk := remarkKey(r.CommentID, r.UserID)
		if _, dup := remarks.Get(rk); dup {
			return ErrAlreadyRemarked
		}

		e := newEncoder(remarkRecordVersion)
		e.putBool(r.Positive)
		e.putTime(r.At)
		if err := remarks.Put(rk, e.bytes()); err != nil {
			return err
		}
		if r.Positive {
			c.Positive++
		} else {
			c.Negative++
		}
		author = c.UserID
		return comments.Put(commentKey(c.ID), encodeComment(c))
	})
	return author, err
}
