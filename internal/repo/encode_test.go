package repo

import (
	"testing"
	"testing/quick"
	"time"

	"softreputation/internal/core"
)

func TestUserRecordQuickRoundTrip(t *testing.T) {
	f := func(name, pass, email string, signedUp, lastLogin int64, activated bool,
		trust float64, grown float64, week uint8) bool {
		in := User{
			Username:     name,
			PasswordHash: pass,
			EmailHash:    email,
			SignedUpAt:   time.Unix(0, signedUp).UTC(),
			LastLoginAt:  time.Unix(0, lastLogin).UTC(),
			Activated:    activated,
			Trust: core.Trust{
				Value:       trust,
				JoinedAt:    time.Unix(0, signedUp).UTC(),
				GrownInWeek: grown,
				WeekIdx:     int(week),
			},
		}
		out, err := decodeUser(encodeUser(in))
		if err != nil {
			return false
		}
		return out.Username == in.Username &&
			out.PasswordHash == in.PasswordHash &&
			out.EmailHash == in.EmailHash &&
			out.SignedUpAt.Equal(in.SignedUpAt) &&
			out.LastLoginAt.Equal(in.LastLoginAt) &&
			out.Activated == in.Activated &&
			out.Trust.Value == in.Trust.Value ||
			(in.Trust.Value != in.Trust.Value && out.Trust.Value != out.Trust.Value) // NaN
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUserRecordZeroTimes(t *testing.T) {
	in := User{Username: "u", Trust: core.NewTrust(time.Time{})}
	out, err := decodeUser(encodeUser(in))
	if err != nil {
		t.Fatal(err)
	}
	if !out.SignedUpAt.IsZero() || !out.LastLoginAt.IsZero() {
		t.Fatal("zero times must round-trip as zero")
	}
}

func TestSoftwareRecordQuickRoundTrip(t *testing.T) {
	f := func(content []byte, name, vendor, version string, size int64, seen int64) bool {
		in := Software{
			Meta: core.SoftwareMeta{
				ID:       core.ComputeSoftwareID(content),
				FileName: name,
				FileSize: size,
				Vendor:   vendor,
				Version:  version,
			},
			FirstSeenAt: time.Unix(0, seen).UTC(),
		}
		out, err := decodeSoftware(encodeSoftware(in))
		if err != nil {
			return false
		}
		return out.Meta == in.Meta && out.FirstSeenAt.Equal(in.FirstSeenAt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRatingRecordQuickRoundTrip(t *testing.T) {
	f := func(score uint8, behaviors uint32, at int64, commentID uint64) bool {
		id := core.ComputeSoftwareID([]byte{1})
		in := core.Rating{
			UserID:    "user",
			Software:  id,
			Score:     int(score%10) + 1,
			Behaviors: core.Behavior(behaviors),
			At:        time.Unix(0, at).UTC(),
		}
		out, cid, err := decodeRating(encodeRating(in, commentID), id, "user")
		if err != nil {
			return false
		}
		return out.Score == in.Score && out.Behaviors == in.Behaviors &&
			out.At.Equal(in.At) && cid == commentID &&
			out.UserID == "user" && out.Software == id
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestCommentRecordQuickRoundTrip(t *testing.T) {
	f := func(id uint64, user, text string, at int64, pos, neg uint16) bool {
		in := core.Comment{
			ID:       id,
			UserID:   user,
			Software: core.ComputeSoftwareID([]byte(text)),
			Text:     text,
			At:       time.Unix(0, at).UTC(),
			Positive: int(pos),
			Negative: int(neg),
		}
		out, err := decodeComment(encodeComment(in))
		if err != nil {
			return false
		}
		return out.ID == in.ID && out.UserID == in.UserID &&
			out.Software == in.Software && out.Text == in.Text &&
			out.At.Equal(in.At) && out.Positive == in.Positive && out.Negative == in.Negative
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestScoreRecordQuickRoundTrip(t *testing.T) {
	f := func(score float64, votes uint16, behaviors uint32, at int64) bool {
		id := core.ComputeSoftwareID([]byte{9})
		in := core.SoftwareScore{
			Software:   id,
			Score:      score,
			Votes:      int(votes),
			Behaviors:  core.Behavior(behaviors),
			ComputedAt: time.Unix(0, at).UTC(),
		}
		out, err := decodeScore(encodeScore(in), id)
		if err != nil {
			return false
		}
		scoreMatch := out.Score == in.Score || (in.Score != in.Score && out.Score != out.Score)
		return scoreMatch && out.Votes == in.Votes &&
			out.Behaviors == in.Behaviors && out.ComputedAt.Equal(in.ComputedAt)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestBootstrapPriorRoundTrip(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	id := core.ComputeSoftwareID([]byte("prior"))
	in := BootstrapPrior{Score: 7.25, Votes: 42, Behaviors: core.BehaviorDisplaysAds}
	if err := s.SetBootstrapPrior(id, in); err != nil {
		t.Fatal(err)
	}
	out, found, err := s.GetBootstrapPrior(id)
	if err != nil || !found || out != in {
		t.Fatalf("prior round trip = %+v, %v, %v", out, found, err)
	}
	if _, found, _ := s.GetBootstrapPrior(core.ComputeSoftwareID([]byte("other"))); found {
		t.Fatal("phantom prior")
	}
}

func TestEncoderDecoderPrimitives(t *testing.T) {
	e := newEncoder(3)
	e.putUint64(12345)
	e.putInt64(-42)
	e.putFloat64(3.5)
	e.putBool(true)
	e.putString("hello")
	e.putBytes([]byte{1, 2, 3})
	e.putTime(time.Time{})

	d, err := newDecoder(e.bytes(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := d.uint64(); v != 12345 {
		t.Fatal("uint64")
	}
	if v, _ := d.int64(); v != -42 {
		t.Fatal("int64")
	}
	if v, _ := d.float64(); v != 3.5 {
		t.Fatal("float64")
	}
	if v, _ := d.bool(); !v {
		t.Fatal("bool")
	}
	if v, _ := d.string(); v != "hello" {
		t.Fatal("string")
	}
	if v, _ := d.bytesField(); len(v) != 3 || v[2] != 3 {
		t.Fatal("bytes")
	}
	if v, _ := d.time(); !v.IsZero() {
		t.Fatal("zero time")
	}
	if err := d.finish(); err != nil {
		t.Fatal(err)
	}
	// finish with trailing bytes fails.
	d2, _ := newDecoder(append(e.bytes(), 0xFF), 3)
	drainAll(d2)
	if err := d2.finish(); err == nil {
		t.Fatal("trailing byte accepted")
	}
}

func drainAll(d *decoder) {
	d.uint64()
	d.int64()
	d.float64()
	d.bool()
	d.string()
	d.bytesField()
	d.time()
}

func TestDecoderErrorPaths(t *testing.T) {
	if _, err := newDecoder(nil, 1); err == nil {
		t.Fatal("nil record accepted")
	}
	d, _ := newDecoder([]byte{1}, 1)
	if _, err := d.uint64(); err == nil {
		t.Fatal("empty uvarint accepted")
	}
	d, _ = newDecoder([]byte{1, 0x80}, 1) // truncated varint
	if _, err := d.int64(); err == nil {
		t.Fatal("truncated varint accepted")
	}
	d, _ = newDecoder([]byte{1, 1, 2, 3}, 1)
	if _, err := d.float64(); err == nil {
		t.Fatal("short float accepted")
	}
	d, _ = newDecoder([]byte{1}, 1)
	if _, err := d.bool(); err == nil {
		t.Fatal("empty bool accepted")
	}
	d, _ = newDecoder([]byte{1, 7}, 1) // bool value 7
	if _, err := d.bool(); err == nil {
		t.Fatal("bad bool accepted")
	}
	d, _ = newDecoder([]byte{1, 5, 'a'}, 1) // string claims 5 bytes, has 1
	if _, err := d.string(); err == nil {
		t.Fatal("short string accepted")
	}
	d, _ = newDecoder([]byte{1, 5, 'a'}, 1)
	if _, err := d.bytesField(); err == nil {
		t.Fatal("short bytes accepted")
	}
}
