package repo

import (
	"errors"
	"strings"
	"testing"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
	"softreputation/internal/vclock"
)

// Fault injection: corrupt records planted directly in the underlying
// buckets must surface as ErrDecode through every read path and as
// reported problems through CheckIntegrity — never as panics or silent
// misreads.

func plant(t *testing.T, s *Store, bucket string, key, val []byte) {
	t.Helper()
	err := s.db.Update(func(tx *storedb.Tx) error {
		return tx.MustBucket(bucket).Put(key, val)
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCorruptUserRecordSurfaces(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	plant(t, s, bucketUsers, []byte("mangled"), []byte{99, 1, 2, 3})

	if _, _, err := s.GetUser("mangled"); !errors.Is(err, ErrDecode) {
		t.Fatalf("GetUser on corrupt record err = %v", err)
	}
	// Healthy records stay readable.
	if _, found, err := s.GetUser("alice"); err != nil || !found {
		t.Fatalf("healthy record affected: %v", err)
	}
	if err := s.ForEachUser(func(User) bool { return true }); !errors.Is(err, ErrDecode) {
		t.Fatalf("ForEachUser err = %v", err)
	}
	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) == 0 || !strings.Contains(problems[0], "undecodable") {
		t.Fatalf("integrity check missed the corruption: %v", problems)
	}
}

func TestCorruptSoftwareRecordSurfaces(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	m := mustUpsertSoftware(t, s, 1)
	bogus := core.ComputeSoftwareID([]byte("bogus"))
	plant(t, s, bucketSoftware, bogus[:], []byte{softwareRecordVersion, 0xFF, 0xFF})

	if _, _, err := s.GetSoftware(bogus); !errors.Is(err, ErrDecode) {
		t.Fatalf("GetSoftware err = %v", err)
	}
	if _, found, err := s.GetSoftware(m.ID); err != nil || !found {
		t.Fatalf("healthy software affected: %v", err)
	}
	if err := s.ForEachSoftware(func(Software) bool { return true }); !errors.Is(err, ErrDecode) {
		t.Fatalf("ForEachSoftware err = %v", err)
	}
	problems, _ := s.CheckIntegrity()
	if len(problems) == 0 {
		t.Fatal("integrity check missed corrupt software record")
	}
}

func TestDanglingIndexEntriesReported(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)
	if _, err := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 5, At: vclock.Epoch}, "c"); err != nil {
		t.Fatal(err)
	}

	// Dangle every kind of index pointer.
	ghost := core.ComputeSoftwareID([]byte("ghost"))
	plant(t, s, bucketEmails, []byte("orphan-hash"), []byte("nobody"))
	plant(t, s, bucketSwByVendor, vendorKey("GhostVendor", ghost), nil)
	plant(t, s, bucketRatingsByU, ratingUserKey("nobody", ghost), nil)
	csKey := append(append([]byte(nil), ghost[:]...), commentKey(999)...)
	plant(t, s, bucketCommentsByS, csKey, nil)

	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	wantFragments := []string{
		"email index",
		"vendor index",
		"by-user index",
		"by-software index",
	}
	for _, frag := range wantFragments {
		found := false
		for _, p := range problems {
			if strings.Contains(p, frag) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("integrity check missed %q problems: %v", frag, problems)
		}
	}
}

func TestMissingMirrorReported(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)
	if _, err := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 5, At: vclock.Epoch}, ""); err != nil {
		t.Fatal(err)
	}
	// Delete the by-user mirror out from under the rating.
	err := s.db.Update(func(tx *storedb.Tx) error {
		return tx.MustBucket(bucketRatingsByU).Delete(ratingUserKey("alice", m.ID))
	})
	if err != nil {
		t.Fatal(err)
	}
	problems, _ := s.CheckIntegrity()
	found := false
	for _, p := range problems {
		if strings.Contains(p, "missing by-user mirror") {
			found = true
		}
	}
	if !found {
		t.Fatalf("missing mirror not reported: %v", problems)
	}
}

func TestCorruptRatingSurfaces(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)
	plant(t, s, bucketRatings, ratingKey(m.ID, "alice"), []byte{ratingRecordVersion, 0x80})

	if _, _, err := s.GetRating(m.ID, "alice"); !errors.Is(err, ErrDecode) {
		t.Fatalf("GetRating err = %v", err)
	}
	if _, err := s.RatingsForSoftware(m.ID); !errors.Is(err, ErrDecode) {
		t.Fatalf("RatingsForSoftware err = %v", err)
	}
}

func TestCorruptCommentSurfaces(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)
	cid, err := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 5, At: vclock.Epoch}, "fine")
	if err != nil {
		t.Fatal(err)
	}
	plant(t, s, bucketComments, commentKey(cid), []byte{commentRecordVersion})

	if _, _, err := s.GetComment(cid); !errors.Is(err, ErrDecode) {
		t.Fatalf("GetComment err = %v", err)
	}
	if _, err := s.CommentsForSoftware(m.ID); !errors.Is(err, ErrDecode) {
		t.Fatalf("CommentsForSoftware err = %v", err)
	}
	if _, err := s.PendingComments(); !errors.Is(err, ErrDecode) {
		t.Fatalf("PendingComments err = %v", err)
	}
	// Remarking a corrupt comment fails cleanly too.
	mustCreateUser(t, s, "bob")
	if _, err := s.AddRemark(core.Remark{UserID: "bob", CommentID: cid, Positive: true, At: vclock.Epoch}); !errors.Is(err, ErrDecode) {
		t.Fatalf("AddRemark err = %v", err)
	}
}
