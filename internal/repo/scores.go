package repo

import (
	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// Published score storage: the output of the 24-hour aggregation job.

const (
	scoreRecordVersion  = 1
	vendorRecordVersion = 1
)

func encodeScore(sc core.SoftwareScore) []byte {
	e := newEncoder(scoreRecordVersion)
	e.putFloat64(sc.Score)
	e.putInt64(int64(sc.Votes))
	e.putUint64(uint64(sc.Behaviors))
	e.putTime(sc.ComputedAt)
	return e.bytes()
}

func decodeScore(data []byte, id core.SoftwareID) (core.SoftwareScore, error) {
	sc := core.SoftwareScore{Software: id}
	d, err := newDecoder(data, scoreRecordVersion)
	if err != nil {
		return sc, err
	}
	if sc.Score, err = d.float64(); err != nil {
		return sc, err
	}
	votes, err := d.int64()
	if err != nil {
		return sc, err
	}
	sc.Votes = int(votes)
	behaviors, err := d.uint64()
	if err != nil {
		return sc, err
	}
	sc.Behaviors = core.Behavior(behaviors)
	if sc.ComputedAt, err = d.time(); err != nil {
		return sc, err
	}
	return sc, d.finish()
}

// SetScore publishes an aggregated software score.
func (s *Store) SetScore(sc core.SoftwareScore) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		return tx.MustBucket(bucketScores).Put(sc.Software[:], encodeScore(sc))
	})
}

// SetScores publishes a batch of scores in one transaction, which is
// what the aggregation job uses.
func (s *Store) SetScores(scores []core.SoftwareScore) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		b := tx.MustBucket(bucketScores)
		for _, sc := range scores {
			if err := b.Put(sc.Software[:], encodeScore(sc)); err != nil {
				return err
			}
		}
		return nil
	})
}

// GetScore fetches the published score of one executable.
func (s *Store) GetScore(id core.SoftwareID) (core.SoftwareScore, bool, error) {
	var sc core.SoftwareScore
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketScores).Get(id[:])
		if !ok {
			return nil
		}
		var derr error
		sc, derr = decodeScore(data, id)
		found = derr == nil
		return derr
	})
	return sc, found, err
}

// SetVendorScore publishes an aggregated vendor score.
func (s *Store) SetVendorScore(v core.VendorScore) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		e := newEncoder(vendorRecordVersion)
		e.putFloat64(v.Score)
		e.putInt64(int64(v.SoftwareCount))
		return tx.MustBucket(bucketVendorScore).Put([]byte(v.Vendor), e.bytes())
	})
}

// GetVendorScore fetches the published score of one vendor.
func (s *Store) GetVendorScore(vendor string) (core.VendorScore, bool, error) {
	out := core.VendorScore{Vendor: vendor}
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketVendorScore).Get([]byte(vendor))
		if !ok {
			return nil
		}
		d, err := newDecoder(data, vendorRecordVersion)
		if err != nil {
			return err
		}
		if out.Score, err = d.float64(); err != nil {
			return err
		}
		count, err := d.int64()
		if err != nil {
			return err
		}
		out.SoftwareCount = int(count)
		found = true
		return d.finish()
	})
	return out, found, err
}

// AggregationState persists the 24-hour job schedule across restarts.
func (s *Store) AggregationState() (core.AggregationSchedule, error) {
	var sched core.AggregationSchedule
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketMeta).Get([]byte("lastAggregation"))
		if !ok {
			return nil
		}
		d, err := newDecoder(data, 1)
		if err != nil {
			return err
		}
		if sched.LastRun, err = d.time(); err != nil {
			return err
		}
		return d.finish()
	})
	return sched, err
}

// SetAggregationState persists the schedule after a run.
func (s *Store) SetAggregationState(sched core.AggregationSchedule) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		e := newEncoder(1)
		e.putTime(sched.LastRun)
		return tx.MustBucket(bucketMeta).Put([]byte("lastAggregation"), e.bytes())
	})
}

// BootstrapPrior is the imported mass behind a bootstrapped score: the
// §2.1 "copying the information from an existing … software rating
// database". During aggregation it acts as prior votes, so early live
// votes are "one out of many, rather than the one and only".
type BootstrapPrior struct {
	// Score is the imported 1–10 rating.
	Score float64
	// Votes is the imported vote count.
	Votes int
	// Behaviors is the imported behaviour profile.
	Behaviors core.Behavior
}

const priorRecordVersion = 1

// SetBootstrapPrior records the imported prior for one executable.
func (s *Store) SetBootstrapPrior(id core.SoftwareID, p BootstrapPrior) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		e := newEncoder(priorRecordVersion)
		e.putFloat64(p.Score)
		e.putInt64(int64(p.Votes))
		e.putUint64(uint64(p.Behaviors))
		if err := markSoftwareDirty(tx, id); err != nil {
			return err
		}
		return tx.MustBucket(bucketPriors).Put(id[:], e.bytes())
	})
}

// ForEachScoreRecord visits every published score record in identity
// order, handing over the raw stored bytes. Tests use it to compare two
// stores' published state byte for byte.
func (s *Store) ForEachScoreRecord(fn func(id core.SoftwareID, raw []byte) bool) error {
	return s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketScores).ForEach(func(k, v []byte) bool {
			var id core.SoftwareID
			copy(id[:], k)
			return fn(id, v)
		})
		return nil
	})
}

// ForEachVendorScoreRecord visits every published vendor score record
// in vendor order, handing over the raw stored bytes.
func (s *Store) ForEachVendorScoreRecord(fn func(vendor string, raw []byte) bool) error {
	return s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketVendorScore).ForEach(func(k, v []byte) bool {
			return fn(string(k), v)
		})
		return nil
	})
}

// GetBootstrapPrior fetches the imported prior for one executable.
func (s *Store) GetBootstrapPrior(id core.SoftwareID) (BootstrapPrior, bool, error) {
	var p BootstrapPrior
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketPriors).Get(id[:])
		if !ok {
			return nil
		}
		d, err := newDecoder(data, priorRecordVersion)
		if err != nil {
			return err
		}
		if p.Score, err = d.float64(); err != nil {
			return err
		}
		votes, err := d.int64()
		if err != nil {
			return err
		}
		p.Votes = int(votes)
		behaviors, err := d.uint64()
		if err != nil {
			return err
		}
		p.Behaviors = core.Behavior(behaviors)
		found = true
		return d.finish()
	})
	return p, found, err
}
