package repo

import (
	"time"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// Software is one executable on record: the §3.3 metadata plus when the
// system first saw it.
type Software struct {
	// Meta is the executable's identity and embedded metadata.
	Meta core.SoftwareMeta
	// FirstSeenAt is when the executable first reached the server.
	FirstSeenAt time.Time
}

const softwareRecordVersion = 1

func encodeSoftware(sw Software) []byte {
	e := newEncoder(softwareRecordVersion)
	e.putBytes(sw.Meta.ID[:])
	e.putString(sw.Meta.FileName)
	e.putInt64(sw.Meta.FileSize)
	e.putString(sw.Meta.Vendor)
	e.putString(sw.Meta.Version)
	e.putTime(sw.FirstSeenAt)
	return e.bytes()
}

func decodeSoftware(data []byte) (Software, error) {
	var sw Software
	d, err := newDecoder(data, softwareRecordVersion)
	if err != nil {
		return sw, err
	}
	id, err := d.bytesField()
	if err != nil {
		return sw, err
	}
	copy(sw.Meta.ID[:], id)
	if sw.Meta.FileName, err = d.string(); err != nil {
		return sw, err
	}
	if sw.Meta.FileSize, err = d.int64(); err != nil {
		return sw, err
	}
	if sw.Meta.Vendor, err = d.string(); err != nil {
		return sw, err
	}
	if sw.Meta.Version, err = d.string(); err != nil {
		return sw, err
	}
	if sw.FirstSeenAt, err = d.time(); err != nil {
		return sw, err
	}
	return sw, d.finish()
}

// vendorKey builds the software-by-vendor index key.
func vendorKey(vendor string, id core.SoftwareID) []byte {
	k := storedb.AppendString(nil, vendor)
	return append(k, id[:]...)
}

// UpsertSoftware records an executable if it is new; an existing record
// is left untouched (metadata is content-derived, so it cannot change
// without the ID changing). It reports whether the executable was new.
func (s *Store) UpsertSoftware(meta core.SoftwareMeta, firstSeen time.Time) (bool, error) {
	var created bool
	err := s.db.Update(func(tx *storedb.Tx) error {
		sw := tx.MustBucket(bucketSoftware)
		if _, exists := sw.Get(meta.ID[:]); exists {
			return nil
		}
		created = true
		rec := Software{Meta: meta, FirstSeenAt: firstSeen}
		if err := sw.Put(meta.ID[:], encodeSoftware(rec)); err != nil {
			return err
		}
		if err := markSoftwareDirty(tx, meta.ID); err != nil {
			return err
		}
		if meta.VendorKnown() {
			return tx.MustBucket(bucketSwByVendor).Put(vendorKey(meta.Vendor, meta.ID), nil)
		}
		return nil
	})
	return created, err
}

// HasSoftware reports whether an executable is on record, without
// decoding it — the read half of the lookup fast path.
func (s *Store) HasSoftware(id core.SoftwareID) (bool, error) {
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		_, found = tx.MustBucket(bucketSoftware).Get(id[:])
		return nil
	})
	return found, err
}

// EnsureSoftware records an executable only if it is genuinely new.
// Unlike UpsertSoftware it checks existence under a read transaction
// first, so the steady-state case — the executable is already known —
// never takes the write lock or appends to the WAL. The upsert it falls
// into on first sight re-checks under the write lock, so a racing
// duplicate is still recorded exactly once.
func (s *Store) EnsureSoftware(meta core.SoftwareMeta, firstSeen time.Time) (bool, error) {
	if known, err := s.HasSoftware(meta.ID); err != nil || known {
		return false, err
	}
	return s.UpsertSoftware(meta, firstSeen)
}

// GetSoftware fetches an executable record by identity.
func (s *Store) GetSoftware(id core.SoftwareID) (Software, bool, error) {
	var sw Software
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketSoftware).Get(id[:])
		if !ok {
			return nil
		}
		var derr error
		sw, derr = decodeSoftware(data)
		found = derr == nil
		return derr
	})
	return sw, found, err
}

// SoftwareByVendor returns the identities of every executable recorded
// under a vendor name, via the secondary index.
func (s *Store) SoftwareByVendor(vendor string) ([]core.SoftwareID, error) {
	var out []core.SoftwareID
	prefix := storedb.AppendString(nil, vendor)
	err := s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketSwByVendor).RangePrefix(prefix, func(k, _ []byte) bool {
			var id core.SoftwareID
			copy(id[:], k[len(prefix):])
			out = append(out, id)
			return true
		})
		return nil
	})
	return out, err
}

// ForEachSoftware visits every executable record in identity order,
// stopping early if fn returns false.
func (s *Store) ForEachSoftware(fn func(Software) bool) error {
	return s.db.View(func(tx *storedb.Tx) error {
		var derr error
		tx.MustBucket(bucketSoftware).ForEach(func(_, v []byte) bool {
			sw, err := decodeSoftware(v)
			if err != nil {
				derr = err
				return false
			}
			return fn(sw)
		})
		return derr
	})
}
