package repo

import (
	"testing"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
	"softreputation/internal/vclock"
)

// collectBatches drains the store's replication stream from a position.
func collectBatches(t *testing.T, s *Store, from uint64) []storedb.Batch {
	t.Helper()
	var out []storedb.Batch
	err := s.DB().Since(from, 0, func(b storedb.Batch) error {
		out = append(out, b)
		return nil
	})
	if err != nil {
		t.Fatalf("Since(%d): %v", from, err)
	}
	return out
}

func TestDirtyMarkersStampedClear(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)

	marks, err := s.DirtySoftware()
	if err != nil || len(marks) != 1 || marks[0].ID != m.ID {
		t.Fatalf("after upsert: marks = %+v, %v", marks, err)
	}
	stale := marks[0]

	// A later vote re-stamps the marker.
	if _, err := s.AddRating(core.Rating{
		UserID: "alice", Software: m.ID, Score: 7, At: vclock.Epoch,
	}, ""); err != nil {
		t.Fatal(err)
	}
	marks, _ = s.DirtySoftware()
	if len(marks) != 1 || marks[0].Gen <= stale.Gen {
		t.Fatalf("vote did not re-stamp the marker: %+v (was gen %d)", marks, stale.Gen)
	}
	fresh := marks[0]

	// Clearing with the stale stamp must keep the marker: the run that
	// read it missed the racing vote.
	err = s.PublishAggregation(AggregationPublish{ClearDirtySoftware: []DirtySoftwareMark{stale}})
	if err != nil {
		t.Fatal(err)
	}
	if marks, _ = s.DirtySoftware(); len(marks) != 1 {
		t.Fatalf("stale clear consumed a re-stamped marker: %+v", marks)
	}

	// Clearing with the current stamp consumes it.
	err = s.PublishAggregation(AggregationPublish{ClearDirtySoftware: []DirtySoftwareMark{fresh}})
	if err != nil {
		t.Fatal(err)
	}
	if marks, _ = s.DirtySoftware(); len(marks) != 0 {
		t.Fatalf("current clear left markers: %+v", marks)
	}
}

func TestDirtyUserMarkOnTrustChange(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	u := mustCreateUser(t, s, "bob")

	// An update that leaves trust untouched marks nothing.
	u.LastLoginAt = vclock.Epoch.Add(1)
	if err := s.UpdateUser(u); err != nil {
		t.Fatal(err)
	}
	if marks, _ := s.DirtyUsers(); len(marks) != 0 {
		t.Fatalf("trust-neutral update marked users: %+v", marks)
	}

	u.Trust = u.Trust.ApplyRemark(true, vclock.Epoch.Add(2))
	if err := s.UpdateUser(u); err != nil {
		t.Fatal(err)
	}
	marks, _ := s.DirtyUsers()
	if len(marks) != 1 || marks[0].Username != "bob" {
		t.Fatalf("trust change not marked: %+v", marks)
	}
	err := s.PublishAggregation(AggregationPublish{ClearDirtyUsers: marks})
	if err != nil {
		t.Fatal(err)
	}
	if marks, _ = s.DirtyUsers(); len(marks) != 0 {
		t.Fatalf("user marker survived clear: %+v", marks)
	}
}

// lastImpact re-derives the cache impact of the newest batches a write
// produced.
func lastImpact(t *testing.T, s *Store, from uint64) Impact {
	t.Helper()
	var merged Impact
	for _, b := range collectBatches(t, s, from) {
		imp := BatchImpact(b)
		if imp.All {
			return imp
		}
		merged.Software = append(merged.Software, imp.Software...)
		merged.Users = append(merged.Users, imp.Users...)
		merged.Vendors = append(merged.Vendors, imp.Vendors...)
	}
	return merged
}

func hasSoftware(imp Impact, id core.SoftwareID) bool {
	for _, got := range imp.Software {
		if got == id {
			return true
		}
	}
	return false
}

func TestBatchImpactAttribution(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	// User creation touches the user and email buckets only.
	seq := s.Seq()
	mustCreateUser(t, s, "alice")
	imp := lastImpact(t, s, seq)
	if imp.All || len(imp.Users) != 1 || imp.Users[0] != "alice" || len(imp.Software) != 0 {
		t.Fatalf("user creation impact = %+v", imp)
	}

	// Software registration attributes to the executable, not All —
	// the dirty marker it writes into the meta bucket carries no report
	// content.
	seq = s.Seq()
	m := mustUpsertSoftware(t, s, 2)
	imp = lastImpact(t, s, seq)
	if imp.All || !hasSoftware(imp, m.ID) || len(imp.Users) != 0 {
		t.Fatalf("software upsert impact = %+v", imp)
	}

	// A vote with a comment spans ratings, comments and their indexes;
	// everything resolves to the one executable.
	seq = s.Seq()
	if _, err := s.AddRating(core.Rating{
		UserID: "alice", Software: m.ID, Score: 4, At: vclock.Epoch,
	}, "noted"); err != nil {
		t.Fatal(err)
	}
	imp = lastImpact(t, s, seq)
	if imp.All || !hasSoftware(imp, m.ID) {
		t.Fatalf("vote impact = %+v", imp)
	}

	// An aggregation publish attributes to the scored executable and
	// its vendor.
	seq = s.Seq()
	err := s.PublishAggregation(AggregationPublish{
		Scores:       []core.SoftwareScore{{Software: m.ID, Score: 4, Votes: 1}},
		VendorScores: []core.VendorScore{{Vendor: "Acme", Score: 4, SoftwareCount: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	imp = lastImpact(t, s, seq)
	if imp.All || !hasSoftware(imp, m.ID) ||
		len(imp.Vendors) != 1 || imp.Vendors[0] != "Acme" {
		t.Fatalf("publish impact = %+v", imp)
	}

	// Conservative fallbacks: anything unattributable flips All.
	for name, b := range map[string]storedb.Batch{
		"op-less (snapshot restore)": {Seq: 1},
		"unknown bucket":             {Seq: 1, Ops: []storedb.Op{{Key: []byte("zz\x00k"), Val: []byte("v")}}},
		"malformed key":              {Seq: 1, Ops: []storedb.Op{{Key: []byte("no-separator")}}},
		"comment delete":             {Seq: 1, Ops: []storedb.Op{{Delete: true, Key: []byte(bucketComments + "\x00k")}}},
	} {
		if imp := BatchImpact(b); !imp.All {
			t.Fatalf("%s: impact = %+v, want All", name, imp)
		}
	}
}
