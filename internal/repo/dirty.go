package repo

import (
	"bytes"
	"encoding/binary"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// Dirty-set bookkeeping for incremental aggregation. Every write that
// can change an aggregated score marks the affected software (or, for
// trust changes, the affected user) in the meta bucket; the aggregation
// job reads the set, recomputes, and clears the consumed markers in the
// same transaction that publishes the recomputed scores, so a crash
// between the two cannot lose a pending recompute.
//
// Each marker is stamped with the commit sequence that wrote it. The
// publish transaction only clears a marker whose stamp still matches
// what the run read: a vote racing the recompute rewrites the marker
// with a later stamp, the clear skips it, and the next run picks the
// software up again. Nothing is ever lost to the race.
//
// The markers live in the meta bucket rather than their own bucket so
// they replicate with everything else: a promoted replica inherits the
// primary's pending recompute set.

const (
	dirtySoftwarePrefix = "dirty-sw|"
	dirtyUserPrefix     = "dirty-u|"
)

func dirtySoftwareKey(id core.SoftwareID) []byte {
	k := append([]byte(nil), dirtySoftwarePrefix...)
	return append(k, id[:]...)
}

func dirtyUserKey(username string) []byte {
	return append([]byte(dirtyUserPrefix), username...)
}

func dirtyStamp(tx *storedb.Tx) []byte {
	var v [8]byte
	binary.BigEndian.PutUint64(v[:], tx.CommitSeq())
	return v[:]
}

// markSoftwareDirty flags an executable for the next incremental
// aggregation run, inside an open write transaction.
func markSoftwareDirty(tx *storedb.Tx, id core.SoftwareID) error {
	return tx.MustBucket(bucketMeta).Put(dirtySoftwareKey(id), dirtyStamp(tx))
}

// markUserDirty flags a user whose trust factor changed: every software
// they rated needs its score reweighed.
func markUserDirty(tx *storedb.Tx, username string) error {
	return tx.MustBucket(bucketMeta).Put(dirtyUserKey(username), dirtyStamp(tx))
}

// DirtySoftwareMark is one pending-recompute flag on an executable.
type DirtySoftwareMark struct {
	// ID is the flagged executable.
	ID core.SoftwareID
	// Gen is the commit stamp the marker carried when read.
	Gen uint64
}

// DirtyUserMark is one pending-recompute flag on a user.
type DirtyUserMark struct {
	// Username is the flagged user.
	Username string
	// Gen is the commit stamp the marker carried when read.
	Gen uint64
}

// DirtySoftware returns the executables flagged since the last
// aggregation publish, in identity order.
func (s *Store) DirtySoftware() ([]DirtySoftwareMark, error) {
	var out []DirtySoftwareMark
	err := s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketMeta).RangePrefix([]byte(dirtySoftwarePrefix), func(k, v []byte) bool {
			var m DirtySoftwareMark
			copy(m.ID[:], k[len(dirtySoftwarePrefix):])
			if len(v) == 8 {
				m.Gen = binary.BigEndian.Uint64(v)
			}
			out = append(out, m)
			return true
		})
		return nil
	})
	return out, err
}

// DirtyUsers returns the users whose trust factor changed since the
// last aggregation publish, in username order.
func (s *Store) DirtyUsers() ([]DirtyUserMark, error) {
	var out []DirtyUserMark
	err := s.db.View(func(tx *storedb.Tx) error {
		tx.MustBucket(bucketMeta).RangePrefix([]byte(dirtyUserPrefix), func(k, v []byte) bool {
			m := DirtyUserMark{Username: string(k[len(dirtyUserPrefix):])}
			if len(v) == 8 {
				m.Gen = binary.BigEndian.Uint64(v)
			}
			out = append(out, m)
			return true
		})
		return nil
	})
	return out, err
}

// AggregationPublish is everything one aggregation run commits, applied
// in a single transaction: recomputed scores, derived vendor scores,
// the schedule, and the consumption of the dirty markers the run read.
type AggregationPublish struct {
	// Scores are the score records that actually changed.
	Scores []core.SoftwareScore
	// VendorScores are the vendor records that actually changed.
	VendorScores []core.VendorScore
	// ClearDirtySoftware / ClearDirtyUsers are the markers the run
	// consumed; each is cleared only if its stamp is unchanged, so a
	// marker rewritten by a racing vote survives for the next run.
	ClearDirtySoftware []DirtySoftwareMark
	// ClearDirtyUsers lists consumed user markers.
	ClearDirtyUsers []DirtyUserMark
	// Schedule is persisted so a restart knows the run happened.
	Schedule core.AggregationSchedule
}

// PublishAggregation commits one aggregation run atomically.
func (s *Store) PublishAggregation(p AggregationPublish) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		scores := tx.MustBucket(bucketScores)
		for _, sc := range p.Scores {
			if err := scores.Put(sc.Software[:], encodeScore(sc)); err != nil {
				return err
			}
		}
		vendors := tx.MustBucket(bucketVendorScore)
		for _, v := range p.VendorScores {
			e := newEncoder(vendorRecordVersion)
			e.putFloat64(v.Score)
			e.putInt64(int64(v.SoftwareCount))
			if err := vendors.Put([]byte(v.Vendor), e.bytes()); err != nil {
				return err
			}
		}
		meta := tx.MustBucket(bucketMeta)
		clearIfUnchanged := func(key []byte, gen uint64) error {
			v, ok := meta.Get(key)
			if !ok || len(v) != 8 || binary.BigEndian.Uint64(v) != gen {
				return nil // rewritten since the run read it: keep
			}
			return meta.Delete(key)
		}
		for _, m := range p.ClearDirtySoftware {
			if err := clearIfUnchanged(dirtySoftwareKey(m.ID), m.Gen); err != nil {
				return err
			}
		}
		for _, m := range p.ClearDirtyUsers {
			if err := clearIfUnchanged(dirtyUserKey(m.Username), m.Gen); err != nil {
				return err
			}
		}
		e := newEncoder(1)
		e.putTime(p.Schedule.LastRun)
		return meta.Put([]byte("lastAggregation"), e.bytes())
	})
}

// Impact describes which cached reports a replicated batch can affect.
// The zero value means "nothing". When All is set the batch touched
// state the analysis cannot attribute (or replaced the whole database),
// and every cached report must go.
type Impact struct {
	// All means the whole cache is suspect.
	All bool
	// Software lists directly affected executables.
	Software []core.SoftwareID
	// Users lists users whose record changed; reports showing their
	// comments (author trust) are affected, resolvable via
	// SoftwareRatedBy.
	Users []string
	// Vendors lists vendors whose published score changed; reports for
	// their software are affected, resolvable via SoftwareByVendor.
	Vendors []string
}

// BatchImpact attributes a replicated batch's operations to the cached
// reports they can invalidate, by bucket prefix. It is deliberately
// conservative: anything unattributable flips All.
func BatchImpact(b storedb.Batch) Impact {
	var imp Impact
	if len(b.Ops) == 0 {
		// An op-less batch is the snapshot-restore signal: the entire
		// state was replaced.
		imp.All = true
		return imp
	}
	seenSw := make(map[core.SoftwareID]bool)
	addSw := func(raw []byte) {
		var id core.SoftwareID
		copy(id[:], raw)
		if !seenSw[id] {
			seenSw[id] = true
			imp.Software = append(imp.Software, id)
		}
	}
	seenUsers := make(map[string]bool)
	seenVendors := make(map[string]bool)
	for _, op := range b.Ops {
		i := bytes.IndexByte(op.Key, 0)
		if i < 0 {
			imp.All = true
			return imp
		}
		bucket, key := string(op.Key[:i]), op.Key[i+1:]
		switch bucket {
		case bucketSoftware, bucketScores, bucketPriors:
			// Keyed directly by software identity.
			addSw(key)
		case bucketRatings, bucketCommentsByS:
			// Software identity is the key prefix.
			if len(key) < len(core.SoftwareID{}) {
				imp.All = true
				return imp
			}
			addSw(key[:len(core.SoftwareID{})])
		case bucketComments:
			// The software lives in the value; a delete has none.
			if op.Delete {
				imp.All = true
				return imp
			}
			c, err := decodeComment(op.Val)
			if err != nil {
				imp.All = true
				return imp
			}
			addSw(c.Software[:])
		case bucketUsers:
			if u := string(key); !seenUsers[u] {
				seenUsers[u] = true
				imp.Users = append(imp.Users, u)
			}
		case bucketVendorScore:
			if v := string(key); !seenVendors[v] {
				seenVendors[v] = true
				imp.Vendors = append(imp.Vendors, v)
			}
		case bucketRemarks:
			// Remark records are never read when building a report; the
			// comment-counter update arrives as a bucketComments put in
			// the same batch.
		case bucketMeta, bucketEmails, bucketRatingsByU, bucketSwByVendor:
			// Counters, schedules, dirty markers and pure secondary
			// indexes: no report content.
		default:
			imp.All = true
			return imp
		}
	}
	return imp
}
