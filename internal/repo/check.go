package repo

import (
	"fmt"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// CheckIntegrity scans the whole repository, decoding every record and
// cross-checking the secondary indexes against their primary tables. It
// returns a human-readable list of problems (empty when the store is
// consistent) and fails only on I/O-level errors; data problems are
// reported, not returned as errors, so an operator can see all of them
// at once.
//
// Checks performed:
//   - every record in every table decodes under its current version;
//   - every e-mail-hash index entry points at an existing user whose
//     record carries that hash, and every user with a hash is indexed;
//   - every software-by-vendor entry points at an existing executable
//     with that vendor, and vice versa;
//   - every rating references an existing user and executable, and has
//     its ratings-by-user mirror (and vice versa);
//   - every comments-by-software entry points at an existing comment on
//     that executable;
//   - comment remark counters are non-negative.
func (s *Store) CheckIntegrity() ([]string, error) {
	var problems []string
	note := func(format string, args ...interface{}) {
		problems = append(problems, fmt.Sprintf(format, args...))
	}

	err := s.db.View(func(tx *storedb.Tx) error {
		users := tx.MustBucket(bucketUsers)
		emails := tx.MustBucket(bucketEmails)
		software := tx.MustBucket(bucketSoftware)
		byVendor := tx.MustBucket(bucketSwByVendor)
		ratings := tx.MustBucket(bucketRatings)
		byUser := tx.MustBucket(bucketRatingsByU)
		comments := tx.MustBucket(bucketComments)
		bySoftware := tx.MustBucket(bucketCommentsByS)

		// Users and the e-mail index.
		userEmail := map[string]string{}
		users.ForEach(func(k, v []byte) bool {
			u, err := decodeUser(v)
			if err != nil {
				note("user %q: undecodable record: %v", k, err)
				return true
			}
			if u.Username != string(k) {
				note("user %q: record claims username %q", k, u.Username)
			}
			userEmail[u.Username] = u.EmailHash
			return true
		})
		indexedEmails := map[string]string{}
		emails.ForEach(func(k, v []byte) bool {
			username := string(v)
			hash := string(k)
			indexedEmails[hash] = username
			if got, ok := userEmail[username]; !ok {
				note("email index %q: user %q does not exist", hash, username)
			} else if got != hash {
				note("email index %q: user %q carries hash %q", hash, username, got)
			}
			return true
		})
		for username, hash := range userEmail {
			if hash == "" {
				continue
			}
			if indexedEmails[hash] != username {
				note("user %q: e-mail hash %q missing from index", username, hash)
			}
		}

		// Software and the vendor index.
		swVendor := map[core.SoftwareID]string{}
		software.ForEach(func(k, v []byte) bool {
			sw, err := decodeSoftware(v)
			if err != nil {
				note("software %x: undecodable record: %v", k, err)
				return true
			}
			swVendor[sw.Meta.ID] = sw.Meta.Vendor
			return true
		})
		byVendor.ForEach(func(k, _ []byte) bool {
			vendor, rest, err := storedb.TakeString(k)
			if err != nil {
				note("vendor index: bad key %x", k)
				return true
			}
			var id core.SoftwareID
			copy(id[:], rest)
			if got, ok := swVendor[id]; !ok {
				note("vendor index %q: software %s does not exist", vendor, id)
			} else if got != vendor {
				note("vendor index %q: software %s carries vendor %q", vendor, id, got)
			}
			return true
		})
		for id, vendor := range swVendor {
			if vendor == "" {
				continue
			}
			if _, ok := byVendor.Get(vendorKey(vendor, id)); !ok {
				note("software %s: missing vendor index entry for %q", id, vendor)
			}
		}

		// Ratings and their per-user mirror.
		ratings.ForEach(func(k, v []byte) bool {
			var id core.SoftwareID
			copy(id[:], k[:len(id)])
			username, _, err := storedb.TakeString(k[len(id):])
			if err != nil {
				note("rating: bad key %x", k)
				return true
			}
			if _, _, err := decodeRating(v, id, username); err != nil {
				note("rating %s/%q: undecodable record: %v", id, username, err)
			}
			if _, ok := userEmail[username]; !ok {
				note("rating %s/%q: user does not exist", id, username)
			}
			if _, ok := swVendor[id]; !ok {
				note("rating %s/%q: software does not exist", id, username)
			}
			if _, ok := byUser.Get(ratingUserKey(username, id)); !ok {
				note("rating %s/%q: missing by-user mirror", id, username)
			}
			return true
		})
		byUser.ForEach(func(k, _ []byte) bool {
			username, rest, err := storedb.TakeString(k)
			if err != nil {
				note("by-user index: bad key %x", k)
				return true
			}
			var id core.SoftwareID
			copy(id[:], rest)
			if _, ok := ratings.Get(ratingKey(id, username)); !ok {
				note("by-user index %q/%s: rating does not exist", username, id)
			}
			return true
		})

		// Comments and their per-software mirror.
		commentSoftware := map[uint64]core.SoftwareID{}
		comments.ForEach(func(k, v []byte) bool {
			c, err := decodeComment(v)
			if err != nil {
				note("comment %x: undecodable record: %v", k, err)
				return true
			}
			if c.Positive < 0 || c.Negative < 0 {
				note("comment %d: negative remark counters", c.ID)
			}
			commentSoftware[c.ID] = c.Software
			if _, ok := bySoftware.Get(append(append([]byte(nil), c.Software[:]...), commentKey(c.ID)...)); !ok {
				note("comment %d: missing by-software mirror", c.ID)
			}
			return true
		})
		bySoftware.ForEach(func(k, _ []byte) bool {
			var id core.SoftwareID
			copy(id[:], k[:len(id)])
			cid := decodeCommentKey(k[len(id):])
			if got, ok := commentSoftware[cid]; !ok {
				note("by-software index %s: comment %d does not exist", id, cid)
			} else if got != id {
				note("by-software index %s: comment %d belongs to %s", id, cid, got)
			}
			return true
		})
		return nil
	})
	return problems, err
}

func decodeCommentKey(k []byte) uint64 {
	var id uint64
	for _, b := range k {
		id = id<<8 | uint64(b)
	}
	return id
}
