// Package repo is the reputation server's typed persistence layer: users,
// software, ratings, comments, remarks and published scores, stored in
// the embedded storedb engine with the secondary indexes the server's
// queries need (ratings by software, ratings by user, software by
// vendor, comments by software, e-mail-hash uniqueness).
//
// The schema holds exactly what Section 3.2 allows: "The only data
// stored in the database about the user is a username, hashed password
// and a hashed e-mail address, as well as timestamps of when the user
// signed up, and was last logged in." No IP addresses, no raw e-mail
// addresses.
package repo

import (
	"errors"
	"fmt"

	"softreputation/internal/storedb"
)

// Bucket names. Kept short: every key carries its bucket prefix.
const (
	bucketUsers       = "u"  // username -> user record
	bucketEmails      = "e"  // email hash -> username
	bucketSoftware    = "s"  // software id -> software record
	bucketSwByVendor  = "sv" // vendor + software id -> nil
	bucketRatings     = "r"  // software id + username -> rating record
	bucketRatingsByU  = "ru" // username + software id -> nil
	bucketComments    = "c"  // comment id -> comment record
	bucketCommentsByS = "cs" // software id + comment id -> nil
	bucketRemarks     = "k"  // comment id + username -> remark record
	bucketScores      = "sc" // software id -> published score record
	bucketVendorScore = "vs" // vendor -> published vendor score
	bucketMeta        = "m"  // singletons: counters, schedules
	bucketPriors      = "bp" // software id -> bootstrap prior record
)

// Sentinel errors for constraint violations.
var (
	// ErrUserExists is returned when creating a user whose name is taken.
	ErrUserExists = errors.New("repo: username already exists")
	// ErrEmailTaken is returned when the e-mail hash is already bound to
	// an account — the one-account-per-address rule of §3.2.
	ErrEmailTaken = errors.New("repo: e-mail address already registered")
	// ErrUserNotFound is returned when a referenced user does not exist.
	ErrUserNotFound = errors.New("repo: user not found")
	// ErrSoftwareNotFound is returned when a referenced executable does
	// not exist.
	ErrSoftwareNotFound = errors.New("repo: software not found")
	// ErrAlreadyRated enforces "each user only votes for a software
	// program exactly once" (§2.1).
	ErrAlreadyRated = errors.New("repo: user has already rated this software")
	// ErrAlreadyRemarked enforces one remark per user per comment.
	ErrAlreadyRemarked = errors.New("repo: user has already remarked this comment")
	// ErrCommentNotFound is returned when a referenced comment does not
	// exist.
	ErrCommentNotFound = errors.New("repo: comment not found")
	// ErrSelfRemark forbids remarking one's own comment.
	ErrSelfRemark = errors.New("repo: cannot remark your own comment")
)

// Store is the typed repository. It is safe for concurrent use.
type Store struct {
	db *storedb.DB
}

// Open opens the repository over a storedb database configured by opts.
func Open(opts storedb.Options) (*Store, error) {
	db, err := storedb.Open(opts)
	if err != nil {
		return nil, fmt.Errorf("repo: %w", err)
	}
	return &Store{db: db}, nil
}

// OpenMemory opens a fresh in-memory repository for tests and
// simulations.
func OpenMemory() *Store {
	db, err := storedb.Open(storedb.Options{})
	if err != nil {
		// In-memory open cannot fail; if it does, it is a programming
		// error worth crashing on.
		panic(err)
	}
	return &Store{db: db}
}

// Close releases the underlying database.
func (s *Store) Close() error { return s.db.Close() }

// Compact snapshots the underlying database and truncates its log.
func (s *Store) Compact() error { return s.db.Compact() }

// DB exposes the underlying database for the replication tier, which
// ships its WAL and manages replica mode directly.
func (s *Store) DB() *storedb.DB { return s.db }

// Seq returns the database's last committed batch sequence number.
func (s *Store) Seq() uint64 { return s.db.Seq() }

// Stats summarises the repository for the /stats endpoint and the
// experiment harness.
type Stats struct {
	// Users is the number of registered accounts.
	Users int
	// Software is the number of distinct executables on record.
	Software int
	// Ratings is the total number of votes cast.
	Ratings int
	// Comments is the total number of comments submitted.
	Comments int
	// Remarks is the total number of comment remarks submitted.
	Remarks int
}

// Stats counts the repository's contents.
func (s *Store) Stats() (Stats, error) {
	var st Stats
	err := s.db.View(func(tx *storedb.Tx) error {
		st.Users = tx.MustBucket(bucketUsers).Count(nil)
		st.Software = tx.MustBucket(bucketSoftware).Count(nil)
		st.Ratings = tx.MustBucket(bucketRatings).Count(nil)
		st.Comments = tx.MustBucket(bucketComments).Count(nil)
		st.Remarks = tx.MustBucket(bucketRemarks).Count(nil)
		return nil
	})
	return st, err
}
