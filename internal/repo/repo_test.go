package repo

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
	"softreputation/internal/vclock"
)

func newUser(name string) User {
	return User{
		Username:     name,
		PasswordHash: "pbkdf2-sha256$1$aa$bb",
		EmailHash:    "hash-of-" + name,
		SignedUpAt:   vclock.Epoch,
		Activated:    true,
		Trust:        core.NewTrust(vclock.Epoch),
	}
}

func newSoftwareMeta(seed byte) core.SoftwareMeta {
	content := []byte{seed, seed + 1, seed + 2}
	return core.SoftwareMeta{
		ID:       core.ComputeSoftwareID(content),
		FileName: fmt.Sprintf("app-%d.exe", seed),
		FileSize: 3,
		Vendor:   "Acme",
		Version:  "1.0",
	}
}

func mustCreateUser(t *testing.T, s *Store, name string) User {
	t.Helper()
	u := newUser(name)
	if err := s.CreateUser(u); err != nil {
		t.Fatalf("CreateUser(%s): %v", name, err)
	}
	return u
}

func mustUpsertSoftware(t *testing.T, s *Store, seed byte) core.SoftwareMeta {
	t.Helper()
	m := newSoftwareMeta(seed)
	if _, err := s.UpsertSoftware(m, vclock.Epoch); err != nil {
		t.Fatalf("UpsertSoftware: %v", err)
	}
	return m
}

func TestUserCRUD(t *testing.T) {
	s := OpenMemory()
	defer s.Close()

	u := mustCreateUser(t, s, "alice")
	got, found, err := s.GetUser("alice")
	if err != nil || !found {
		t.Fatalf("GetUser: %v, %v", found, err)
	}
	if got.Username != u.Username || got.EmailHash != u.EmailHash || !got.Activated {
		t.Fatalf("user round trip = %+v", got)
	}
	if got.Trust.Value != core.TrustMin {
		t.Fatalf("trust = %v", got.Trust.Value)
	}

	got.LastLoginAt = vclock.Epoch.Add(time.Hour)
	got.Trust = got.Trust.Apply(2, vclock.Epoch.Add(time.Hour))
	if err := s.UpdateUser(got); err != nil {
		t.Fatal(err)
	}
	again, _, _ := s.GetUser("alice")
	if !again.LastLoginAt.Equal(vclock.Epoch.Add(time.Hour)) || again.Trust.Value != 3 {
		t.Fatalf("update lost: %+v", again)
	}
}

func TestUserUniqueness(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	if err := s.CreateUser(newUser("alice")); !errors.Is(err, ErrUserExists) {
		t.Fatalf("dup username err = %v", err)
	}
	// Same e-mail hash, different username: one account per address.
	dup := newUser("alice2")
	dup.EmailHash = "hash-of-alice"
	if err := s.CreateUser(dup); !errors.Is(err, ErrEmailTaken) {
		t.Fatalf("dup email err = %v", err)
	}
	name, found, _ := s.UsernameForEmailHash("hash-of-alice")
	if !found || name != "alice" {
		t.Fatalf("email index = %q, %v", name, found)
	}
}

func TestUserUpdateGuards(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	if err := s.UpdateUser(newUser("ghost")); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("update missing err = %v", err)
	}
	u := mustCreateUser(t, s, "alice")
	u.EmailHash = "different"
	if err := s.UpdateUser(u); err == nil {
		t.Fatal("e-mail hash change accepted")
	}
	if err := s.CreateUser(User{}); err == nil {
		t.Fatal("empty username accepted")
	}
}

func TestForEachUser(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for _, n := range []string{"carol", "alice", "bob"} {
		mustCreateUser(t, s, n)
	}
	var names []string
	if err := s.ForEachUser(func(u User) bool {
		names = append(names, u.Username)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "alice" || names[2] != "carol" {
		t.Fatalf("ForEachUser order = %v", names)
	}
	// Early stop.
	count := 0
	s.ForEachUser(func(User) bool { count++; return false })
	if count != 1 {
		t.Fatalf("early stop visited %d", count)
	}
}

func TestSoftwareUpsert(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	m := newSoftwareMeta(1)
	created, err := s.UpsertSoftware(m, vclock.Epoch)
	if err != nil || !created {
		t.Fatalf("first upsert: %v, %v", created, err)
	}
	created, err = s.UpsertSoftware(m, vclock.Epoch.Add(time.Hour))
	if err != nil || created {
		t.Fatalf("second upsert must be a no-op: %v, %v", created, err)
	}
	got, found, err := s.GetSoftware(m.ID)
	if err != nil || !found {
		t.Fatalf("GetSoftware: %v", err)
	}
	if got.Meta != m || !got.FirstSeenAt.Equal(vclock.Epoch) {
		t.Fatalf("software = %+v", got)
	}
}

func TestSoftwareByVendor(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for seed := byte(1); seed <= 3; seed++ {
		mustUpsertSoftware(t, s, seed)
	}
	other := newSoftwareMeta(9)
	other.Vendor = "Globex"
	s.UpsertSoftware(other, vclock.Epoch)
	stripped := newSoftwareMeta(10)
	stripped.Vendor = ""
	s.UpsertSoftware(stripped, vclock.Epoch)

	acme, err := s.SoftwareByVendor("Acme")
	if err != nil || len(acme) != 3 {
		t.Fatalf("Acme list = %d, %v", len(acme), err)
	}
	globex, _ := s.SoftwareByVendor("Globex")
	if len(globex) != 1 || globex[0] != other.ID {
		t.Fatalf("Globex list = %v", globex)
	}
	if none, _ := s.SoftwareByVendor(""); len(none) != 0 {
		t.Fatal("stripped-vendor software must not be indexed")
	}
	// Vendor names that prefix each other stay separate.
	if ac, _ := s.SoftwareByVendor("Ac"); len(ac) != 0 {
		t.Fatal("prefix vendor name leaked entries")
	}
}

func TestAddRatingOneVoteRule(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)

	r := core.Rating{UserID: "alice", Software: m.ID, Score: 7, At: vclock.Epoch}
	if _, err := s.AddRating(r, "works fine"); err != nil {
		t.Fatal(err)
	}
	r.Score = 2
	if _, err := s.AddRating(r, "changed my mind"); !errors.Is(err, ErrAlreadyRated) {
		t.Fatalf("second vote err = %v", err)
	}
	got, found, _ := s.GetRating(m.ID, "alice")
	if !found || got.Score != 7 {
		t.Fatalf("stored rating = %+v, %v", got, found)
	}
}

func TestAddRatingGuards(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)

	bad := core.Rating{UserID: "alice", Software: m.ID, Score: 11, At: vclock.Epoch}
	if _, err := s.AddRating(bad, ""); !errors.Is(err, core.ErrScoreRange) {
		t.Fatalf("out-of-range score err = %v", err)
	}
	ghostUser := core.Rating{UserID: "ghost", Software: m.ID, Score: 5, At: vclock.Epoch}
	if _, err := s.AddRating(ghostUser, ""); !errors.Is(err, ErrUserNotFound) {
		t.Fatalf("missing user err = %v", err)
	}
	ghostSw := core.Rating{UserID: "alice", Software: core.ComputeSoftwareID([]byte("x")), Score: 5, At: vclock.Epoch}
	if _, err := s.AddRating(ghostSw, ""); !errors.Is(err, ErrSoftwareNotFound) {
		t.Fatalf("missing software err = %v", err)
	}
}

func TestRatingsForSoftwareAndByUser(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	m1 := mustUpsertSoftware(t, s, 1)
	m2 := mustUpsertSoftware(t, s, 2)
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("user%d", i)
		mustCreateUser(t, s, name)
		r := core.Rating{UserID: name, Software: m1.ID, Score: i + 1, At: vclock.Epoch,
			Behaviors: core.BehaviorDisplaysAds}
		if _, err := s.AddRating(r, ""); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.AddRating(core.Rating{UserID: "user0", Software: m2.ID, Score: 9, At: vclock.Epoch}, ""); err != nil {
		t.Fatal(err)
	}

	votes, err := s.RatingsForSoftware(m1.ID)
	if err != nil || len(votes) != 5 {
		t.Fatalf("RatingsForSoftware = %d, %v", len(votes), err)
	}
	sum := 0
	for _, v := range votes {
		sum += v.Score
		if v.Software != m1.ID || !v.Behaviors.Has(core.BehaviorDisplaysAds) {
			t.Fatalf("vote fields wrong: %+v", v)
		}
	}
	if sum != 15 {
		t.Fatalf("scores sum = %d", sum)
	}

	rated, err := s.SoftwareRatedBy("user0")
	if err != nil || len(rated) != 2 {
		t.Fatalf("SoftwareRatedBy = %v, %v", rated, err)
	}
}

func TestCommentsAndRemarks(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "author")
	mustCreateUser(t, s, "reader")
	mustCreateUser(t, s, "reader2")
	m := mustUpsertSoftware(t, s, 1)

	cid, err := s.AddRating(core.Rating{UserID: "author", Software: m.ID, Score: 3, At: vclock.Epoch},
		"shows pop-ups constantly")
	if err != nil || cid == 0 {
		t.Fatalf("AddRating with comment: %d, %v", cid, err)
	}

	comments, err := s.CommentsForSoftware(m.ID)
	if err != nil || len(comments) != 1 || comments[0].Text != "shows pop-ups constantly" {
		t.Fatalf("comments = %+v, %v", comments, err)
	}

	author, err := s.AddRemark(core.Remark{UserID: "reader", CommentID: cid, Positive: true, At: vclock.Epoch})
	if err != nil || author != "author" {
		t.Fatalf("AddRemark: %q, %v", author, err)
	}
	if _, err := s.AddRemark(core.Remark{UserID: "reader", CommentID: cid, Positive: false, At: vclock.Epoch}); !errors.Is(err, ErrAlreadyRemarked) {
		t.Fatalf("dup remark err = %v", err)
	}
	if _, err := s.AddRemark(core.Remark{UserID: "author", CommentID: cid, Positive: true, At: vclock.Epoch}); !errors.Is(err, ErrSelfRemark) {
		t.Fatalf("self remark err = %v", err)
	}
	if _, err := s.AddRemark(core.Remark{UserID: "reader", CommentID: 9999, Positive: true, At: vclock.Epoch}); !errors.Is(err, ErrCommentNotFound) {
		t.Fatalf("missing comment err = %v", err)
	}
	s.AddRemark(core.Remark{UserID: "reader2", CommentID: cid, Positive: false, At: vclock.Epoch})

	c, found, _ := s.GetComment(cid)
	if !found || c.Positive != 1 || c.Negative != 1 {
		t.Fatalf("comment counters = %+v", c)
	}
}

func TestCommentIDsMonotonic(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	m := mustUpsertSoftware(t, s, 1)
	var last uint64
	for i := 0; i < 5; i++ {
		name := fmt.Sprintf("u%d", i)
		mustCreateUser(t, s, name)
		cid, err := s.AddRating(core.Rating{UserID: name, Software: m.ID, Score: 5, At: vclock.Epoch}, "c")
		if err != nil {
			t.Fatal(err)
		}
		if cid <= last {
			t.Fatalf("comment id %d not increasing past %d", cid, last)
		}
		last = cid
	}
}

func TestScoresRoundTrip(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	m := mustUpsertSoftware(t, s, 1)
	sc := core.SoftwareScore{
		Software:   m.ID,
		Score:      7.25,
		Votes:      12,
		Behaviors:  core.BehaviorDisplaysAds | core.BehaviorTracksUsage,
		ComputedAt: vclock.Epoch.Add(24 * time.Hour),
	}
	if err := s.SetScore(sc); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.GetScore(m.ID)
	if err != nil || !found {
		t.Fatalf("GetScore: %v", err)
	}
	if got.Score != 7.25 || got.Votes != 12 || !got.Behaviors.Has(core.BehaviorTracksUsage) {
		t.Fatalf("score = %+v", got)
	}
	if _, found, _ := s.GetScore(core.ComputeSoftwareID([]byte("other"))); found {
		t.Fatal("phantom score")
	}
}

func TestSetScoresBatch(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	var batch []core.SoftwareScore
	for seed := byte(1); seed <= 10; seed++ {
		m := mustUpsertSoftware(t, s, seed)
		batch = append(batch, core.SoftwareScore{Software: m.ID, Score: float64(seed), Votes: 1})
	}
	if err := s.SetScores(batch); err != nil {
		t.Fatal(err)
	}
	got, found, _ := s.GetScore(batch[4].Software)
	if !found || got.Score != 5 {
		t.Fatalf("batch score = %+v", got)
	}
}

func TestVendorScoreRoundTrip(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	v := core.VendorScore{Vendor: "Acme", Score: 6.5, SoftwareCount: 4}
	if err := s.SetVendorScore(v); err != nil {
		t.Fatal(err)
	}
	got, found, err := s.GetVendorScore("Acme")
	if err != nil || !found || got != v {
		t.Fatalf("vendor score = %+v, %v, %v", got, found, err)
	}
	if _, found, _ := s.GetVendorScore("Ghost"); found {
		t.Fatal("phantom vendor score")
	}
}

func TestAggregationStatePersistence(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(storedb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	sched, err := s.AggregationState()
	if err != nil || !sched.LastRun.IsZero() {
		t.Fatalf("initial state = %+v, %v", sched, err)
	}
	ran := sched.Ran(vclock.Epoch.Add(24 * time.Hour))
	if err := s.SetAggregationState(ran); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(storedb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	got, err := s2.AggregationState()
	if err != nil || !got.LastRun.Equal(ran.LastRun) {
		t.Fatalf("persisted state = %+v, %v", got, err)
	}
}

func TestRepoPersistenceAcrossReopen(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(storedb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	mustCreateUser(t, s, "alice")
	m := mustUpsertSoftware(t, s, 1)
	if _, err := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 8, At: vclock.Epoch}, "solid"); err != nil {
		t.Fatal(err)
	}
	s.Close()

	s2, err := Open(storedb.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	if _, found, _ := s2.GetUser("alice"); !found {
		t.Fatal("user lost across reopen")
	}
	votes, _ := s2.RatingsForSoftware(m.ID)
	if len(votes) != 1 || votes[0].Score != 8 {
		t.Fatalf("ratings lost: %+v", votes)
	}
	comments, _ := s2.CommentsForSoftware(m.ID)
	if len(comments) != 1 {
		t.Fatal("comments lost")
	}
	// The comment-ID counter continues, no reuse.
	mustCreateUser(t, s2, "bob")
	cid, err := s2.AddRating(core.Rating{UserID: "bob", Software: m.ID, Score: 5, At: vclock.Epoch}, "meh")
	if err != nil || cid != 2 {
		t.Fatalf("comment id after reopen = %d, %v", cid, err)
	}
}

func TestStats(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	mustCreateUser(t, s, "bob")
	m := mustUpsertSoftware(t, s, 1)
	cid, _ := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 5, At: vclock.Epoch}, "c")
	s.AddRating(core.Rating{UserID: "bob", Software: m.ID, Score: 6, At: vclock.Epoch}, "")
	s.AddRemark(core.Remark{UserID: "bob", CommentID: cid, Positive: true, At: vclock.Epoch})

	st, err := s.Stats()
	if err != nil {
		t.Fatal(err)
	}
	want := Stats{Users: 2, Software: 1, Ratings: 2, Comments: 1, Remarks: 1}
	if st != want {
		t.Fatalf("stats = %+v, want %+v", st, want)
	}
}

func TestForEachSoftware(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for seed := byte(1); seed <= 4; seed++ {
		mustUpsertSoftware(t, s, seed)
	}
	n := 0
	if err := s.ForEachSoftware(func(sw Software) bool {
		if sw.Meta.Vendor != "Acme" {
			t.Fatalf("unexpected vendor %q", sw.Meta.Vendor)
		}
		n++
		return true
	}); err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("visited %d software", n)
	}
}

func TestDecodeRejectsGarbage(t *testing.T) {
	if _, err := decodeUser([]byte{}); !errors.Is(err, ErrDecode) {
		t.Fatalf("empty user decode err = %v", err)
	}
	if _, err := decodeUser([]byte{99, 1, 2}); !errors.Is(err, ErrDecode) {
		t.Fatalf("bad version decode err = %v", err)
	}
	if _, err := decodeSoftware([]byte{softwareRecordVersion, 0xFF}); !errors.Is(err, ErrDecode) {
		t.Fatalf("truncated software decode err = %v", err)
	}
	if _, err := decodeComment([]byte{commentRecordVersion}); !errors.Is(err, ErrDecode) {
		t.Fatalf("truncated comment decode err = %v", err)
	}
	// Trailing bytes are an error too.
	valid := encodeUser(newUser("x"))
	if _, err := decodeUser(append(valid, 0x00)); !errors.Is(err, ErrDecode) {
		t.Fatalf("trailing bytes decode err = %v", err)
	}
}

func TestCheckIntegrityCleanStore(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	mustCreateUser(t, s, "alice")
	mustCreateUser(t, s, "bob")
	m := mustUpsertSoftware(t, s, 1)
	stripped := newSoftwareMeta(2)
	stripped.Vendor = ""
	s.UpsertSoftware(stripped, vclock.Epoch)
	cid, err := s.AddRating(core.Rating{UserID: "alice", Software: m.ID, Score: 7, At: vclock.Epoch}, "good")
	if err != nil {
		t.Fatal(err)
	}
	s.AddRating(core.Rating{UserID: "bob", Software: m.ID, Score: 4, At: vclock.Epoch}, "")
	s.AddRemark(core.Remark{UserID: "bob", CommentID: cid, Positive: true, At: vclock.Epoch})

	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("clean store reported problems: %v", problems)
	}
}

func TestCheckIntegrityAtScale(t *testing.T) {
	s := OpenMemory()
	defer s.Close()
	for i := 0; i < 20; i++ {
		mustCreateUser(t, s, fmt.Sprintf("user%02d", i))
	}
	var metas []core.SoftwareMeta
	for seed := byte(1); seed <= 30; seed++ {
		metas = append(metas, mustUpsertSoftware(t, s, seed))
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 10; j++ {
			s.AddRating(core.Rating{
				UserID:   fmt.Sprintf("user%02d", i),
				Software: metas[(i+j)%len(metas)].ID,
				Score:    1 + (i+j)%10,
				At:       vclock.Epoch,
			}, "c")
		}
	}
	problems, err := s.CheckIntegrity()
	if err != nil {
		t.Fatal(err)
	}
	if len(problems) != 0 {
		t.Fatalf("populated store reported %d problems, e.g. %v", len(problems), problems[0])
	}
}
