package repo

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
	"time"
)

// Record values are encoded with a compact, versioned, deterministic
// binary codec: a one-byte record version followed by fields in a fixed
// order. Keys (which need bytewise ordering) use the storedb key
// encoding instead; values never need ordering, only round-tripping.

// ErrDecode is returned when a stored record cannot be decoded.
var ErrDecode = errors.New("repo: record decode error")

type encoder struct {
	buf []byte
}

func newEncoder(version byte) *encoder {
	return &encoder{buf: []byte{version}}
}

func (e *encoder) bytes() []byte { return e.buf }

func (e *encoder) putUint64(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

func (e *encoder) putInt64(v int64) {
	e.buf = binary.AppendVarint(e.buf, v)
}

func (e *encoder) putFloat64(v float64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], math.Float64bits(v))
	e.buf = append(e.buf, b[:]...)
}

func (e *encoder) putBool(v bool) {
	if v {
		e.buf = append(e.buf, 1)
	} else {
		e.buf = append(e.buf, 0)
	}
}

func (e *encoder) putString(s string) {
	e.putUint64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

func (e *encoder) putBytes(b []byte) {
	e.putUint64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// putTime stores a time as Unix nanoseconds; the zero time is stored as
// a sentinel so it round-trips IsZero.
func (e *encoder) putTime(t time.Time) {
	if t.IsZero() {
		e.putInt64(math.MinInt64)
		return
	}
	e.putInt64(t.UnixNano())
}

type decoder struct {
	buf []byte
}

func newDecoder(data []byte, wantVersion byte) (*decoder, error) {
	if len(data) == 0 {
		return nil, fmt.Errorf("%w: empty record", ErrDecode)
	}
	if data[0] != wantVersion {
		return nil, fmt.Errorf("%w: record version %d, want %d", ErrDecode, data[0], wantVersion)
	}
	return &decoder{buf: data[1:]}, nil
}

func (d *decoder) uint64() (uint64, error) {
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad uvarint", ErrDecode)
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) int64() (int64, error) {
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		return 0, fmt.Errorf("%w: bad varint", ErrDecode)
	}
	d.buf = d.buf[n:]
	return v, nil
}

func (d *decoder) float64() (float64, error) {
	if len(d.buf) < 8 {
		return 0, fmt.Errorf("%w: short float", ErrDecode)
	}
	v := math.Float64frombits(binary.BigEndian.Uint64(d.buf))
	d.buf = d.buf[8:]
	return v, nil
}

func (d *decoder) bool() (bool, error) {
	if len(d.buf) < 1 {
		return false, fmt.Errorf("%w: short bool", ErrDecode)
	}
	v := d.buf[0]
	d.buf = d.buf[1:]
	if v > 1 {
		return false, fmt.Errorf("%w: bad bool %d", ErrDecode, v)
	}
	return v == 1, nil
}

func (d *decoder) string() (string, error) {
	n, err := d.uint64()
	if err != nil {
		return "", err
	}
	if uint64(len(d.buf)) < n {
		return "", fmt.Errorf("%w: short string", ErrDecode)
	}
	s := string(d.buf[:n])
	d.buf = d.buf[n:]
	return s, nil
}

func (d *decoder) bytesField() ([]byte, error) {
	n, err := d.uint64()
	if err != nil {
		return nil, err
	}
	if uint64(len(d.buf)) < n {
		return nil, fmt.Errorf("%w: short bytes", ErrDecode)
	}
	b := append([]byte(nil), d.buf[:n]...)
	d.buf = d.buf[n:]
	return b, nil
}

func (d *decoder) time() (time.Time, error) {
	v, err := d.int64()
	if err != nil {
		return time.Time{}, err
	}
	if v == math.MinInt64 {
		return time.Time{}, nil
	}
	return time.Unix(0, v).UTC(), nil
}

func (d *decoder) finish() error {
	if len(d.buf) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrDecode, len(d.buf))
	}
	return nil
}
