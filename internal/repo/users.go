package repo

import (
	"fmt"
	"time"

	"softreputation/internal/core"
	"softreputation/internal/storedb"
)

// User is one registered account, holding exactly the §3.2 fields plus
// the trust-factor state of the reputation engine.
type User struct {
	// Username is the unique account name and primary key.
	Username string
	// PasswordHash is the salted PBKDF2 hash of the password.
	PasswordHash string
	// EmailHash is the peppered hash of the signup address.
	EmailHash string
	// SignedUpAt and LastLoginAt are the only timestamps kept.
	SignedUpAt  time.Time
	LastLoginAt time.Time
	// Activated reports whether the e-mail round trip completed.
	Activated bool
	// Trust is the user's trust-factor state.
	Trust core.Trust
}

const userRecordVersion = 1

func encodeUser(u User) []byte {
	e := newEncoder(userRecordVersion)
	e.putString(u.Username)
	e.putString(u.PasswordHash)
	e.putString(u.EmailHash)
	e.putTime(u.SignedUpAt)
	e.putTime(u.LastLoginAt)
	e.putBool(u.Activated)
	e.putFloat64(u.Trust.Value)
	e.putTime(u.Trust.JoinedAt)
	e.putFloat64(u.Trust.GrownInWeek)
	e.putInt64(int64(u.Trust.WeekIdx))
	return e.bytes()
}

func decodeUser(data []byte) (User, error) {
	var u User
	d, err := newDecoder(data, userRecordVersion)
	if err != nil {
		return u, err
	}
	if u.Username, err = d.string(); err != nil {
		return u, err
	}
	if u.PasswordHash, err = d.string(); err != nil {
		return u, err
	}
	if u.EmailHash, err = d.string(); err != nil {
		return u, err
	}
	if u.SignedUpAt, err = d.time(); err != nil {
		return u, err
	}
	if u.LastLoginAt, err = d.time(); err != nil {
		return u, err
	}
	if u.Activated, err = d.bool(); err != nil {
		return u, err
	}
	if u.Trust.Value, err = d.float64(); err != nil {
		return u, err
	}
	if u.Trust.JoinedAt, err = d.time(); err != nil {
		return u, err
	}
	if u.Trust.GrownInWeek, err = d.float64(); err != nil {
		return u, err
	}
	week, err := d.int64()
	if err != nil {
		return u, err
	}
	u.Trust.WeekIdx = int(week)
	return u, d.finish()
}

// CreateUser registers a new account, enforcing username uniqueness and
// the one-account-per-e-mail rule.
func (s *Store) CreateUser(u User) error {
	if u.Username == "" {
		return fmt.Errorf("repo: empty username")
	}
	return s.db.Update(func(tx *storedb.Tx) error {
		users := tx.MustBucket(bucketUsers)
		if _, exists := users.Get([]byte(u.Username)); exists {
			return ErrUserExists
		}
		emails := tx.MustBucket(bucketEmails)
		if u.EmailHash != "" {
			if _, taken := emails.Get([]byte(u.EmailHash)); taken {
				return ErrEmailTaken
			}
			if err := emails.Put([]byte(u.EmailHash), []byte(u.Username)); err != nil {
				return err
			}
		}
		return users.Put([]byte(u.Username), encodeUser(u))
	})
}

// GetUser fetches an account by name.
func (s *Store) GetUser(username string) (User, bool, error) {
	var u User
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		data, ok := tx.MustBucket(bucketUsers).Get([]byte(username))
		if !ok {
			return nil
		}
		var derr error
		u, derr = decodeUser(data)
		found = derr == nil
		return derr
	})
	return u, found, err
}

// UpdateUser overwrites an existing account record. The username and
// e-mail hash are immutable; attempts to change the e-mail hash are
// rejected to keep the uniqueness index consistent.
func (s *Store) UpdateUser(u User) error {
	return s.db.Update(func(tx *storedb.Tx) error {
		users := tx.MustBucket(bucketUsers)
		data, ok := users.Get([]byte(u.Username))
		if !ok {
			return ErrUserNotFound
		}
		old, err := decodeUser(data)
		if err != nil {
			return err
		}
		if old.EmailHash != u.EmailHash {
			return fmt.Errorf("repo: e-mail hash is immutable")
		}
		if old.Trust != u.Trust {
			// A trust change reweighs every vote this user ever cast;
			// flag them so incremental aggregation revisits their
			// software.
			if err := markUserDirty(tx, u.Username); err != nil {
				return err
			}
		}
		return users.Put([]byte(u.Username), encodeUser(u))
	})
}

// TrustForUsers fetches the trust factors of many users in one read
// transaction — the batch form of GetUser().Trust.Value for report
// assembly and incremental aggregation. Unknown users are omitted.
func (s *Store) TrustForUsers(usernames []string) (map[string]float64, error) {
	out := make(map[string]float64, len(usernames))
	err := s.db.View(func(tx *storedb.Tx) error {
		users := tx.MustBucket(bucketUsers)
		for _, name := range usernames {
			if _, ok := out[name]; ok {
				continue
			}
			data, ok := users.Get([]byte(name))
			if !ok {
				continue
			}
			u, err := decodeUser(data)
			if err != nil {
				return err
			}
			out[name] = u.Trust.Value
		}
		return nil
	})
	return out, err
}

// ForEachUser visits every account in username order, stopping early if
// fn returns false.
func (s *Store) ForEachUser(fn func(User) bool) error {
	return s.db.View(func(tx *storedb.Tx) error {
		var derr error
		tx.MustBucket(bucketUsers).ForEach(func(k, v []byte) bool {
			u, err := decodeUser(v)
			if err != nil {
				derr = err
				return false
			}
			return fn(u)
		})
		return derr
	})
}

// UsernameForEmailHash resolves the account bound to an e-mail hash.
func (s *Store) UsernameForEmailHash(emailHash string) (string, bool, error) {
	var name string
	var found bool
	err := s.db.View(func(tx *storedb.Tx) error {
		v, ok := tx.MustBucket(bucketEmails).Get([]byte(emailHash))
		if ok {
			name, found = string(v), true
		}
		return nil
	})
	return name, found, err
}
