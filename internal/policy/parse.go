package policy

import (
	"errors"
	"fmt"
	"strconv"
	"strings"

	"softreputation/internal/core"
)

// ErrParse wraps every policy-syntax error.
var ErrParse = errors.New("policy: parse error")

// Parse reads the line-oriented policy DSL. Blank lines and lines
// starting with # are ignored. Every policy must end with exactly one
// "default allow|deny|ask" line.
func Parse(src string) (*Policy, error) {
	p := &Policy{Default: Ask}
	haveDefault := false
	for lineNo, raw := range strings.Split(src, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if haveDefault {
			return nil, fmt.Errorf("%w: line %d: rules after default", ErrParse, lineNo+1)
		}
		toks, err := lex(line)
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
		}
		if len(toks) == 0 {
			continue
		}
		if toks[0] == "default" {
			if len(toks) != 2 {
				return nil, fmt.Errorf("%w: line %d: default takes one action", ErrParse, lineNo+1)
			}
			action, err := parseAction(toks[1])
			if err != nil {
				return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
			}
			p.Default = action
			haveDefault = true
			continue
		}
		action, err := parseAction(toks[0])
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
		}
		if len(toks) < 3 || toks[1] != "if" {
			return nil, fmt.Errorf("%w: line %d: expected '%s if <condition>'", ErrParse, lineNo+1, toks[0])
		}
		pr := &parser{toks: toks[2:]}
		cond, err := pr.parseOr()
		if err != nil {
			return nil, fmt.Errorf("%w: line %d: %v", ErrParse, lineNo+1, err)
		}
		if pr.pos != len(pr.toks) {
			return nil, fmt.Errorf("%w: line %d: trailing tokens from %q", ErrParse, lineNo+1, pr.toks[pr.pos])
		}
		p.Rules = append(p.Rules, Rule{Action: action, Cond: cond, Source: line})
	}
	if !haveDefault {
		return nil, fmt.Errorf("%w: missing 'default' line", ErrParse)
	}
	return p, nil
}

// MustParse is Parse for compile-time-constant policies; it panics on
// error.
func MustParse(src string) *Policy {
	p, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return p
}

func parseAction(tok string) (Action, error) {
	switch tok {
	case "allow":
		return Allow, nil
	case "deny":
		return Deny, nil
	case "ask":
		return Ask, nil
	default:
		return Ask, fmt.Errorf("unknown action %q", tok)
	}
}

// lex splits one line into tokens: words (which may contain colons and
// hyphens), double-quoted strings glued to a word prefix (vendor:"Acme
// Corp"), numbers, comparison operators and parentheses.
func lex(line string) ([]string, error) {
	var toks []string
	i := 0
	for i < len(line) {
		c := line[i]
		switch {
		case c == ' ' || c == '\t':
			i++
		case c == '(' || c == ')':
			toks = append(toks, string(c))
			i++
		case c == '>' || c == '<' || c == '=' || c == '!':
			if i+1 < len(line) && line[i+1] == '=' {
				toks = append(toks, line[i:i+2])
				i += 2
			} else if c == '>' || c == '<' {
				toks = append(toks, string(c))
				i++
			} else {
				return nil, fmt.Errorf("stray %q", string(c))
			}
		default:
			start := i
			for i < len(line) {
				c := line[i]
				if c == ' ' || c == '\t' || c == '(' || c == ')' ||
					c == '>' || c == '<' || c == '=' || c == '!' {
					break
				}
				if c == '"' {
					// Quoted section: consume to the closing quote.
					end := strings.IndexByte(line[i+1:], '"')
					if end < 0 {
						return nil, errors.New("unterminated quote")
					}
					i += end + 2
					continue
				}
				i++
			}
			toks = append(toks, line[start:i])
		}
	}
	return toks, nil
}

type parser struct {
	toks []string
	pos  int
}

func (p *parser) peek() string {
	if p.pos < len(p.toks) {
		return p.toks[p.pos]
	}
	return ""
}

func (p *parser) next() string {
	t := p.peek()
	if t != "" {
		p.pos++
	}
	return t
}

func (p *parser) parseOr() (Expr, error) {
	left, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.peek() == "or" {
		p.next()
		right, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		left = orExpr{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseAnd() (Expr, error) {
	left, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for p.peek() == "and" {
		p.next()
		right, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		left = andExpr{l: left, r: right}
	}
	return left, nil
}

func (p *parser) parseUnary() (Expr, error) {
	switch p.peek() {
	case "not":
		p.next()
		inner, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return notExpr{inner: inner}, nil
	case "(":
		p.next()
		inner, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		if p.next() != ")" {
			return nil, errors.New("missing )")
		}
		return inner, nil
	case "":
		return nil, errors.New("unexpected end of condition")
	default:
		return p.parsePredicate()
	}
}

// numericFields maps comparable predicate names to context accessors.
var numericFields = map[string]func(Context) float64{
	"rating":        func(c Context) float64 { return c.Rating },
	"vendor-rating": func(c Context) float64 { return c.VendorRating },
	"votes":         func(c Context) float64 { return float64(c.Votes) },
}

// flagFields maps boolean predicate names to context accessors.
var flagFields = map[string]func(Context) bool{
	"known":             func(c Context) bool { return c.Known },
	"signed":            func(c Context) bool { return c.Signed },
	"signed-by-trusted": func(c Context) bool { return c.SignedByTrusted },
	"vendor-known":      func(c Context) bool { return c.VendorKnown },
	"unsigned":          func(c Context) bool { return !c.Signed },
	"unrated":           func(c Context) bool { return c.Votes == 0 },
}

func (p *parser) parsePredicate() (Expr, error) {
	tok := p.next()
	if get, ok := flagFields[tok]; ok {
		return flagExpr{get: get}, nil
	}
	if get, ok := numericFields[tok]; ok {
		op := p.next()
		switch op {
		case ">=", ">", "<=", "<", "==", "!=":
		default:
			return nil, fmt.Errorf("expected comparison after %q, got %q", tok, op)
		}
		num := p.next()
		rhs, err := strconv.ParseFloat(num, 64)
		if err != nil {
			return nil, fmt.Errorf("bad number %q after %q %s", num, tok, op)
		}
		return cmpExpr{get: get, op: op, rhs: rhs}, nil
	}
	if name, ok := strings.CutPrefix(tok, "behavior:"); ok {
		flag, err := core.ParseBehavior(name)
		if err != nil || flag == 0 {
			return nil, fmt.Errorf("unknown behaviour %q", name)
		}
		return behaviorExpr{flag: flag}, nil
	}
	if name, ok := strings.CutPrefix(tok, "vendor:"); ok {
		name = strings.Trim(name, `"`)
		if name == "" {
			return nil, errors.New("empty vendor name")
		}
		return vendorExpr{name: name}, nil
	}
	return nil, fmt.Errorf("unknown predicate %q", tok)
}
