package policy

import "testing"

// FuzzParse hardens the policy parser: arbitrary text must either parse
// or fail cleanly — never panic — and whatever parses must render back
// to a policy that parses again to the same decisions on a probe set.
func FuzzParse(f *testing.F) {
	f.Add("allow if signed\ndefault deny")
	f.Add("deny if behavior:keylogging or (rating < 3 and votes >= 5)\ndefault ask")
	f.Add("# comment\n\ndefault allow")
	f.Add("allow if vendor:\"Acme Corp\"\ndefault ask")
	f.Add("allow if not not signed\ndefault ask")
	f.Add("allow if rating >= 7.5.5\ndefault ask")

	probes := []Context{
		{},
		{Signed: true, Rating: 8, Votes: 12},
		{Rating: 2.5, Votes: 1, Vendor: "Acme Corp"},
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Parse(src)
		if err != nil {
			return
		}
		p2, err := Parse(p.String())
		if err != nil {
			t.Fatalf("String() of a valid policy does not re-parse: %v\n%s", err, p.String())
		}
		for _, ctx := range probes {
			if p.Evaluate(ctx) != p2.Evaluate(ctx) {
				t.Fatalf("round-tripped policy diverges on %+v", ctx)
			}
		}
	})
}
