package policy

import (
	"errors"
	"strings"
	"testing"

	"softreputation/internal/core"
)

// corporate is the exact §4.2 example: trusted vendors always allowed,
// other software only with rating over 7.5 and no advertisements.
const corporate = `
# corporate policy
allow if signed-by-trusted
allow if rating >= 7.5 and not behavior:displays-ads
default deny
`

func TestCorporatePolicyFromPaper(t *testing.T) {
	p, err := Parse(corporate)
	if err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		ctx  Context
		want Action
	}{
		{"trusted vendor, terrible rating", Context{SignedByTrusted: true, Signed: true, Rating: 1}, Allow},
		{"high rating, clean", Context{Rating: 8.2, Votes: 10}, Allow},
		{"high rating but shows ads", Context{Rating: 9, Behaviors: core.BehaviorDisplaysAds}, Deny},
		{"exactly 7.5, clean", Context{Rating: 7.5}, Allow},
		{"below threshold", Context{Rating: 7.4}, Deny},
		{"unknown and unrated", Context{}, Deny},
	}
	for _, c := range cases {
		if got := p.Evaluate(c.ctx); got != c.want {
			t.Errorf("%s: got %v, want %v", c.name, got, c.want)
		}
	}
}

func TestFirstMatchWins(t *testing.T) {
	p := MustParse(`
deny if behavior:keylogging
allow if rating >= 5
default ask
`)
	// Keylogger with a great rating is still denied: rule order.
	got := p.Evaluate(Context{Rating: 9.5, Behaviors: core.BehaviorKeylogging})
	if got != Deny {
		t.Fatalf("keylogger allowed: %v", got)
	}
	action, src := p.Explain(Context{Rating: 9.5, Behaviors: core.BehaviorKeylogging})
	if action != Deny || !strings.Contains(src, "keylogging") {
		t.Fatalf("Explain = %v, %q", action, src)
	}
	// Nothing matches: default with empty source.
	action, src = p.Explain(Context{Rating: 2})
	if action != Ask || src != "" {
		t.Fatalf("default Explain = %v, %q", action, src)
	}
}

func TestOperatorsAndGrouping(t *testing.T) {
	p := MustParse(`
allow if (votes > 10 or signed) and vendor-rating != 0
deny if votes == 0 and unsigned
default ask
`)
	if got := p.Evaluate(Context{Votes: 11, VendorRating: 5}); got != Allow {
		t.Fatalf("grouped or: %v", got)
	}
	if got := p.Evaluate(Context{Signed: true, VendorRating: 3}); got != Allow {
		t.Fatalf("signed arm: %v", got)
	}
	if got := p.Evaluate(Context{Votes: 11}); got != Ask {
		t.Fatalf("vendor-rating zero must fail the and: %v", got)
	}
	if got := p.Evaluate(Context{}); got != Deny {
		t.Fatalf("unsigned unrated: %v", got)
	}
}

func TestVendorPredicate(t *testing.T) {
	p := MustParse(`
deny if vendor:"Shady Corp"
allow if vendor:Acme
default ask
`)
	if got := p.Evaluate(Context{Vendor: "Shady Corp"}); got != Deny {
		t.Fatalf("quoted vendor: %v", got)
	}
	if got := p.Evaluate(Context{Vendor: "Acme"}); got != Allow {
		t.Fatalf("bare vendor: %v", got)
	}
	if got := p.Evaluate(Context{Vendor: "Other"}); got != Ask {
		t.Fatalf("unknown vendor: %v", got)
	}
}

func TestFlagPredicates(t *testing.T) {
	p := MustParse(`
allow if known and vendor-known and not unrated
deny if unsigned
default ask
`)
	if got := p.Evaluate(Context{Known: true, VendorKnown: true, Votes: 2}); got != Allow {
		t.Fatalf("flags: %v", got)
	}
	if got := p.Evaluate(Context{Known: true, VendorKnown: true}); got != Deny {
		t.Fatalf("unrated falls through to unsigned deny: %v", got)
	}
	if got := p.Evaluate(Context{Signed: true}); got != Ask {
		t.Fatalf("signed unknown: %v", got)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",                                            // no default
		"allow if rating >= 5",                        // no default
		"frobnicate if signed\ndefault ask",           // bad action
		"allow rating >= 5\ndefault ask",              // missing if
		"allow if rating 5\ndefault ask",              // missing operator
		"allow if rating >= high\ndefault ask",        // bad number
		"allow if behavior:flying\ndefault ask",       // unknown behaviour
		"allow if mystery-flag\ndefault ask",          // unknown predicate
		"allow if (signed\ndefault ask",               // missing paren
		"allow if signed and\ndefault ask",            // dangling and
		"default ask\nallow if signed",                // rule after default
		"default maybe",                               // bad default action
		"allow if vendor:\"Unterminated\ndefault ask", // unterminated quote... lexer
		"allow if signed ) extra\ndefault ask",        // trailing tokens
		"allow if rating ! 5\ndefault ask",            // stray !
	}
	for _, src := range bad {
		if _, err := Parse(src); !errors.Is(err, ErrParse) {
			t.Errorf("Parse(%q) err = %v, want ErrParse", src, err)
		}
	}
}

func TestMustParsePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustParse of bad policy must panic")
		}
	}()
	MustParse("not a policy")
}

func TestStringRoundTrips(t *testing.T) {
	p := MustParse(corporate)
	rendered := p.String()
	p2, err := Parse(rendered)
	if err != nil {
		t.Fatalf("re-parse of String() failed: %v\n%s", err, rendered)
	}
	// Same decisions on a probe set.
	probes := []Context{
		{SignedByTrusted: true},
		{Rating: 8},
		{Rating: 8, Behaviors: core.BehaviorDisplaysAds},
		{},
	}
	for _, ctx := range probes {
		if p.Evaluate(ctx) != p2.Evaluate(ctx) {
			t.Fatalf("round-tripped policy diverges on %+v", ctx)
		}
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	p, err := Parse(`
# leading comment

allow if signed
# trailing comment
default deny
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Rules) != 1 || p.Default != Deny {
		t.Fatalf("policy = %+v", p)
	}
}

func TestActionString(t *testing.T) {
	if Allow.String() != "allow" || Deny.String() != "deny" || Ask.String() != "ask" {
		t.Fatal("action names wrong")
	}
	if Action(9).String() == "" {
		t.Fatal("out-of-range action must render")
	}
}
