// Package policy implements the software policy manager of Section 4.2:
// "it would be possible for corporations or individual users to set up
// policies for what software is allowed to execute on their computers
// … by specifying that any software from trusted vendors should be
// allowed, while other software only is allowed if it has a rating over
// 7.5/10 and does not show any advertisements."
//
// Policies are ordered rules over the facts the reputation system
// supplies at execution time (signature status, score, vote count,
// vendor rating, behaviour flags). The first matching rule decides;
// a default action closes the policy. The textual form is a small,
// line-oriented DSL:
//
//	# corporate policy
//	allow if signed-by-trusted
//	deny  if behavior:keylogging or behavior:sends-personal-data
//	allow if rating >= 7.5 and not behavior:displays-ads
//	deny  if vendor-rating < 3 and votes >= 5
//	default ask
package policy

import (
	"fmt"
	"strings"

	"softreputation/internal/core"
)

// Action is a policy decision.
type Action int

// Policy actions. Ask defers to the interactive user prompt.
const (
	Ask Action = iota
	Allow
	Deny
)

// String returns the action's DSL keyword.
func (a Action) String() string {
	switch a {
	case Allow:
		return "allow"
	case Deny:
		return "deny"
	case Ask:
		return "ask"
	default:
		return fmt.Sprintf("Action(%d)", int(a))
	}
}

// Context is the fact set a policy evaluates against, assembled by the
// client from the signature check and the server's lookup report.
type Context struct {
	// Known reports whether the reputation system had seen the
	// executable before.
	Known bool
	// Signed reports whether the file carries a cryptographically valid
	// vendor signature.
	Signed bool
	// SignedByTrusted reports whether that signature's vendor is on the
	// local trusted-vendor list.
	SignedByTrusted bool
	// VendorKnown reports whether the file embeds a vendor name.
	VendorKnown bool
	// Vendor is the embedded vendor name.
	Vendor string
	// Rating is the aggregated score (0 when unrated).
	Rating float64
	// Votes is the number of votes behind Rating.
	Votes int
	// VendorRating is the vendor's derived score (0 when none).
	VendorRating float64
	// Behaviors is the published behaviour consensus.
	Behaviors core.Behavior
}

// Rule is one parsed policy line.
type Rule struct {
	// Action is taken when the condition holds.
	Action Action
	// Cond is the rule's condition.
	Cond Expr
	// Source is the original text, for diagnostics and String.
	Source string
}

// Policy is an ordered rule list with a default action.
type Policy struct {
	// Rules are evaluated in order; the first whose condition holds
	// decides.
	Rules []Rule
	// Default applies when no rule matches.
	Default Action
}

// Evaluate returns the policy's decision for the given facts.
func (p *Policy) Evaluate(ctx Context) Action {
	for _, r := range p.Rules {
		if r.Cond.Eval(ctx) {
			return r.Action
		}
	}
	return p.Default
}

// Explain returns the decision together with the rule that produced it
// ("" for the default), for client UI and tests.
func (p *Policy) Explain(ctx Context) (Action, string) {
	for _, r := range p.Rules {
		if r.Cond.Eval(ctx) {
			return r.Action, r.Source
		}
	}
	return p.Default, ""
}

// String renders the policy back to its DSL form.
func (p *Policy) String() string {
	var b strings.Builder
	for _, r := range p.Rules {
		b.WriteString(r.Source)
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "default %s\n", p.Default)
	return b.String()
}

// Expr is a parsed condition.
type Expr interface {
	// Eval reports whether the condition holds for the facts.
	Eval(ctx Context) bool
}

type andExpr struct{ l, r Expr }

func (e andExpr) Eval(ctx Context) bool { return e.l.Eval(ctx) && e.r.Eval(ctx) }

type orExpr struct{ l, r Expr }

func (e orExpr) Eval(ctx Context) bool { return e.l.Eval(ctx) || e.r.Eval(ctx) }

type notExpr struct{ inner Expr }

func (e notExpr) Eval(ctx Context) bool { return !e.inner.Eval(ctx) }

type flagExpr struct{ get func(Context) bool }

func (e flagExpr) Eval(ctx Context) bool { return e.get(ctx) }

type cmpExpr struct {
	get func(Context) float64
	op  string
	rhs float64
}

func (e cmpExpr) Eval(ctx Context) bool {
	v := e.get(ctx)
	switch e.op {
	case ">=":
		return v >= e.rhs
	case ">":
		return v > e.rhs
	case "<=":
		return v <= e.rhs
	case "<":
		return v < e.rhs
	case "==":
		return v == e.rhs
	case "!=":
		return v != e.rhs
	default:
		return false
	}
}

type behaviorExpr struct{ flag core.Behavior }

func (e behaviorExpr) Eval(ctx Context) bool { return ctx.Behaviors.Has(e.flag) }

type vendorExpr struct{ name string }

func (e vendorExpr) Eval(ctx Context) bool { return ctx.Vendor == e.name }
