package resilience

import (
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"softreputation/internal/vclock"
)

// countingServer is an httptest server that counts requests reaching it.
func countingServer(t *testing.T, hits *atomic.Int64) *httptest.Server {
	t.Helper()
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(ts.Close)
	return ts
}

func get(t *testing.T, c *http.Client, url string) error {
	t.Helper()
	resp, err := c.Get(url)
	if err == nil {
		resp.Body.Close()
	}
	return err
}

func TestPartitionNetCutAndHeal(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := countingServer(t, &aHits)
	b := countingServer(t, &bHits)

	pnet := NewPartitionNet(1, nil)
	pnet.AddNode("a", a.URL)
	pnet.AddNode("b", b.URL)
	client := &http.Client{Transport: pnet.Transport("c", nil)}

	if err := get(t, client, a.URL); err != nil {
		t.Fatalf("open link: %v", err)
	}

	pnet.Cut("c", "a")
	err := get(t, client, a.URL)
	if err == nil {
		t.Fatal("request crossed a cut link")
	}
	// The failure reads as a dial timeout, like FaultTransport's.
	var nerr net.Error
	if !errors.As(err, &nerr) || !nerr.Timeout() {
		t.Fatalf("cut error = %v, want a timeout net.Error", err)
	}
	if aHits.Load() != 1 {
		t.Fatalf("a saw %d requests, want 1", aHits.Load())
	}
	// Other links are untouched.
	if err := get(t, client, b.URL); err != nil {
		t.Fatalf("uncut link: %v", err)
	}

	pnet.Heal("c", "a")
	if err := get(t, client, a.URL); err != nil {
		t.Fatalf("healed link: %v", err)
	}
	st := pnet.Stats("c", "a")
	if st.Delivered != 2 || st.DroppedRequests != 1 {
		t.Fatalf("stats = %+v, want 2 delivered, 1 dropped", st)
	}
}

func TestPartitionNetOneWay(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := countingServer(t, &aHits)
	b := countingServer(t, &bHits)

	pnet := NewPartitionNet(1, nil)
	pnet.AddNode("a", a.URL)
	pnet.AddNode("b", b.URL)
	fromA := &http.Client{Transport: pnet.Transport("a", nil)}
	fromB := &http.Client{Transport: pnet.Transport("b", nil)}

	pnet.CutOneWay("a", "b")
	if err := get(t, fromA, b.URL); err == nil {
		t.Fatal("a->b crossed a one-way cut")
	}
	if err := get(t, fromB, a.URL); err != nil {
		t.Fatalf("b->a must stay open: %v", err)
	}
	if !pnet.Partitioned("a", "b") || pnet.Partitioned("b", "a") {
		t.Fatal("Partitioned() disagrees with the installed cut")
	}
}

func TestPartitionNetLoseReplies(t *testing.T) {
	var hits atomic.Int64
	srv := countingServer(t, &hits)

	pnet := NewPartitionNet(1, nil)
	pnet.AddNode("s", srv.URL)
	client := &http.Client{Transport: pnet.Transport("c", nil)}

	pnet.LoseReplies("c", "s")
	if err := get(t, client, srv.URL); err == nil {
		t.Fatal("reply crossed a lose-replies link")
	}
	// The request DID arrive: its side effects happened.
	if hits.Load() != 1 {
		t.Fatalf("server saw %d requests, want 1 (request delivered, reply lost)", hits.Load())
	}
	if st := pnet.Stats("c", "s"); st.DroppedReplies != 1 {
		t.Fatalf("stats = %+v, want 1 dropped reply", st)
	}
}

func TestPartitionNetTimedHealOnVirtualClock(t *testing.T) {
	var hits atomic.Int64
	srv := countingServer(t, &hits)

	clk := vclock.NewVirtual(vclock.Epoch)
	pnet := NewPartitionNet(7, clk)
	pnet.AddNode("s", srv.URL)
	client := &http.Client{Transport: pnet.Transport("c", nil)}

	pnet.CutFor("c", "s", 10*time.Minute)
	if err := get(t, client, srv.URL); err == nil {
		t.Fatal("request crossed inside the cut window")
	}
	clk.Advance(9 * time.Minute)
	if err := get(t, client, srv.URL); err == nil {
		t.Fatal("request crossed before the heal deadline")
	}
	clk.Advance(2 * time.Minute)
	if err := get(t, client, srv.URL); err != nil {
		t.Fatalf("timed cut did not heal: %v", err)
	}
}

func TestPartitionNetIsolateAndHealAll(t *testing.T) {
	var aHits, bHits atomic.Int64
	a := countingServer(t, &aHits)
	b := countingServer(t, &bHits)

	pnet := NewPartitionNet(1, nil)
	pnet.AddNode("a", a.URL)
	pnet.AddNode("b", b.URL)
	pnet.AddNode("c", "http://c.invalid")
	fromB := &http.Client{Transport: pnet.Transport("b", nil)}

	pnet.Isolate("a")
	if err := get(t, fromB, a.URL); err == nil {
		t.Fatal("b reached an isolated node")
	}
	if !pnet.Partitioned("a", "b") || !pnet.Partitioned("a", "c") || pnet.Partitioned("b", "c") {
		t.Fatal("Isolate cut the wrong links")
	}
	pnet.HealAll()
	if err := get(t, fromB, a.URL); err != nil {
		t.Fatalf("HealAll did not reopen the link: %v", err)
	}
}

func TestPartitionNetConnectCostBurnsVirtualTime(t *testing.T) {
	srv := countingServer(t, new(atomic.Int64))

	clk := vclock.NewVirtual(vclock.Epoch)
	pnet := NewPartitionNet(3, clk)
	pnet.ConnectCost = 2 * time.Second
	pnet.AddNode("s", srv.URL)
	client := &http.Client{Transport: pnet.Transport("c", nil)}

	pnet.Cut("c", "s")
	before := clk.Now()
	_ = get(t, client, srv.URL)
	burned := clk.Now().Sub(before)
	if burned < time.Second || burned > 2*time.Second {
		t.Fatalf("blackholed send burned %v, want within [1s, 2s]", burned)
	}
}

func TestPartitionNetUnknownDestinationPassesThrough(t *testing.T) {
	var hits atomic.Int64
	srv := countingServer(t, &hits)

	pnet := NewPartitionNet(1, nil)
	pnet.AddNode("other", "http://other.invalid")
	pnet.Isolate("other")
	client := &http.Client{Transport: pnet.Transport("c", nil)}
	if err := get(t, client, srv.URL); err != nil {
		t.Fatalf("unregistered destination must pass through: %v", err)
	}
	if hits.Load() != 1 {
		t.Fatal("request did not reach the unregistered server")
	}
}
