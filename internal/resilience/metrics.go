package resilience

import "softreputation/internal/telemetry"

// RegisterMetrics exposes an executor's (and its breaker's) counters
// through reg, bridged as scrape-time closures so Do pays nothing.
// The name label distinguishes multiple executors registered into one
// registry (a daemon guarding several dependencies).
func (e *Executor) RegisterMetrics(reg *telemetry.Registry, name string) {
	lbl := telemetry.L("executor", name)
	for _, c := range []struct {
		metric, help string
		get          func(ExecutorStats) int
	}{
		{"reputation_resilience_calls_total", "Logical calls run under the executor.",
			func(s ExecutorStats) int { return s.Calls }},
		{"reputation_resilience_attempts_total", "Underlying operation attempts.",
			func(s ExecutorStats) int { return s.Attempts }},
		{"reputation_resilience_retries_total", "Attempts that were repeats.",
			func(s ExecutorStats) int { return s.Retries }},
		{"reputation_resilience_fast_fails_total", "Calls rejected by the open breaker.",
			func(s ExecutorStats) int { return s.FastFails }},
		{"reputation_resilience_failures_total", "Calls that exhausted every attempt.",
			func(s ExecutorStats) int { return s.Failures }},
	} {
		get := c.get
		reg.CounterFunc(c.metric, c.help, lbl,
			func() uint64 { return uint64(get(e.Stats())) })
	}
	if b := e.breaker; b != nil {
		reg.GaugeFunc("reputation_resilience_breaker_state",
			"Breaker position: 0 closed, 1 open, 2 half-open.", lbl,
			func() float64 { return float64(b.State()) })
		reg.CounterFunc("reputation_resilience_breaker_opens_total",
			"Times the circuit tripped open.", lbl,
			func() uint64 { return uint64(b.Stats().Opens) })
	}
}
