package resilience

import (
	"math/rand"
	"time"
)

// Policy configures retry with exponential backoff and jitter.
type Policy struct {
	// MaxAttempts bounds the total number of attempts, the first one
	// included; values below 1 mean a single attempt.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff.
	MaxDelay time.Duration
	// Multiplier grows the backoff between retries; values at or
	// below 1 default to 2.
	Multiplier float64
	// Jitter spreads each delay uniformly over ±Jitter·delay, from a
	// seeded source so schedules stay reproducible. 0 disables.
	Jitter float64
	// AttemptTimeout is the per-attempt deadline applied to each
	// attempt's context; 0 leaves the parent deadline alone. Keep it
	// zero under a virtual clock — the deadline runs on wall time.
	AttemptTimeout time.Duration
}

// DefaultPolicy is the production-shaped retry: four attempts, 100 ms
// base doubling to a 2 s cap with 20% jitter, 1 s per attempt.
func DefaultPolicy() Policy {
	return Policy{
		MaxAttempts:    4,
		BaseDelay:      100 * time.Millisecond,
		MaxDelay:       2 * time.Second,
		Multiplier:     2,
		Jitter:         0.2,
		AttemptTimeout: time.Second,
	}
}

// attempts normalises MaxAttempts.
func (p Policy) attempts() int {
	if p.MaxAttempts < 1 {
		return 1
	}
	return p.MaxAttempts
}

// delay computes the backoff before retry number retry (1-based),
// drawing jitter from rng when both are set.
func (p Policy) delay(retry int, rng *rand.Rand) time.Duration {
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	if mult <= 1 {
		mult = 2
	}
	for i := 1; i < retry; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if p.Jitter > 0 && rng != nil {
		d += d * p.Jitter * (2*rng.Float64() - 1)
	}
	if d < 0 {
		d = 0
	}
	return time.Duration(d)
}
