package resilience

import (
	"sync"
	"time"

	"softreputation/internal/vclock"
)

// State is the circuit breaker's position.
type State int

// Breaker states.
const (
	// Closed passes calls through, counting consecutive failures.
	Closed State = iota
	// Open fast-fails every call until the cooldown elapses.
	Open
	// HalfOpen lets one probe through; its outcome closes or reopens
	// the circuit.
	HalfOpen
)

// String names the state.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerStats counts breaker activity.
type BreakerStats struct {
	// Opens is how many times the circuit tripped open.
	Opens int
	// FastFails counts calls rejected without touching the network.
	FastFails int
	// Probes counts half-open probe attempts.
	Probes int
}

// Breaker is a closed/open/half-open circuit breaker on a pluggable
// clock. It is safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	clock     vclock.Clock

	mu       sync.Mutex
	state    State
	failures int
	openedAt time.Time
	probing  bool
	stats    BreakerStats
}

// NewBreaker creates a breaker that opens after threshold consecutive
// failures and probes again cooldown later. A nil clock selects the
// system clock.
func NewBreaker(threshold int, cooldown time.Duration, clock vclock.Clock) *Breaker {
	if threshold < 1 {
		threshold = 1
	}
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Breaker{threshold: threshold, cooldown: cooldown, clock: clock}
}

// Allow gates one call: nil means proceed (and, in half-open, claims
// the probe slot); ErrOpen means fast-fail without a network attempt.
func (b *Breaker) Allow() error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roll(b.clock.Now())
	switch b.state {
	case Closed:
		return nil
	case HalfOpen:
		if b.probing {
			b.stats.FastFails++
			return ErrOpen
		}
		b.probing = true
		b.stats.Probes++
		return nil
	default: // Open
		b.stats.FastFails++
		return ErrOpen
	}
}

// Record reports a call's outcome. Only transient failures (see
// Retryable) count against the circuit: a 4xx answer proves the server
// is alive and resets the failure streak like a success — and so does a
// 429 shed, which is the server deliberately refusing work it could not
// finish in time. Tripping on sheds would turn a brownout into a full
// self-inflicted outage.
func (b *Breaker) Record(err error) {
	failure := err != nil && Retryable(err) && !IsShed(err)
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case HalfOpen:
		b.probing = false
		if failure {
			b.trip()
		} else {
			b.state = Closed
			b.failures = 0
		}
	default:
		if failure {
			b.failures++
			if b.failures >= b.threshold {
				b.trip()
			}
		} else {
			b.failures = 0
		}
	}
}

// trip opens the circuit; the caller holds the lock.
func (b *Breaker) trip() {
	b.state = Open
	b.failures = 0
	b.openedAt = b.clock.Now()
	b.stats.Opens++
}

// roll moves open → half-open once the cooldown has elapsed; the
// caller holds the lock.
func (b *Breaker) roll(now time.Time) {
	if b.state == Open && now.Sub(b.openedAt) >= b.cooldown {
		b.state = HalfOpen
		b.probing = false
	}
}

// State returns the current position, cooldown transitions applied.
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.roll(b.clock.Now())
	return b.state
}

// Stats returns a snapshot of the breaker counters.
func (b *Breaker) Stats() BreakerStats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.stats
}
