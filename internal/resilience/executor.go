package resilience

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"softreputation/internal/vclock"
)

// ExecutorStats counts what the executor did across all calls.
type ExecutorStats struct {
	// Calls is the number of Do invocations.
	Calls int
	// Attempts is the number of underlying operation attempts.
	Attempts int
	// Retries is how many attempts were repeats.
	Retries int
	// FastFails counts calls rejected by the open breaker.
	FastFails int
	// Failures counts calls that exhausted every attempt.
	Failures int
}

// Executor wraps an operation in the retry policy and (optionally) a
// circuit breaker. One executor guards one dependency — the client
// API holds one for the reputation server. It is safe for concurrent
// use.
type Executor struct {
	retry   Policy
	breaker *Breaker
	sleeper Sleeper

	mu    sync.Mutex
	rng   *rand.Rand
	stats ExecutorStats
}

// NewExecutor builds an executor. breaker may be nil (retry only);
// a nil clock selects the system clock; seed drives the backoff
// jitter so schedules replay deterministically.
func NewExecutor(retry Policy, breaker *Breaker, clock vclock.Clock, seed int64) *Executor {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &Executor{
		retry:   retry,
		breaker: breaker,
		sleeper: SleeperFor(clock),
		rng:     rand.New(rand.NewSource(seed)),
	}
}

// Breaker exposes the wrapped breaker, nil when retry-only.
func (e *Executor) Breaker() *Breaker { return e.breaker }

// Stats returns a snapshot of the executor counters.
func (e *Executor) Stats() ExecutorStats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Do runs op under the retry policy and breaker. op receives a
// per-attempt context (deadline-bounded when AttemptTimeout is set).
// The last attempt's error is returned; ErrOpen is returned without
// any attempt when the breaker is open.
func (e *Executor) Do(ctx context.Context, op func(ctx context.Context) error) error {
	e.mu.Lock()
	e.stats.Calls++
	e.mu.Unlock()

	var err error
	for attempt := 0; attempt < e.retry.attempts(); attempt++ {
		if attempt > 0 {
			e.mu.Lock()
			d := e.retry.delay(attempt, e.rng)
			if hint, ok := RetryAfterHint(err); ok && hint > d {
				// Honour the hint, but never exactly: Retry-After is
				// whole seconds, so shed clients often receive the same
				// value and would reconverge into the spike that got
				// them shed. Each executor's own rng spreads retries
				// across [hint, 1.25*hint].
				d = hint + time.Duration(e.rng.Int63n(int64(hint)/4+1))
			}
			e.mu.Unlock()
			if serr := e.sleeper.Sleep(ctx, d); serr != nil {
				return serr
			}
			e.mu.Lock()
			e.stats.Retries++
			e.mu.Unlock()
		}

		if e.breaker != nil {
			if berr := e.breaker.Allow(); berr != nil {
				e.mu.Lock()
				e.stats.FastFails++
				e.mu.Unlock()
				return berr
			}
		}
		e.mu.Lock()
		e.stats.Attempts++
		e.mu.Unlock()

		attemptCtx, cancel := ctx, context.CancelFunc(func() {})
		if e.retry.AttemptTimeout > 0 {
			attemptCtx, cancel = context.WithTimeout(ctx, e.retry.AttemptTimeout)
		}
		err = op(attemptCtx)
		cancel()
		if e.breaker != nil {
			e.breaker.Record(err)
		}
		if err == nil {
			return nil
		}
		if !Retryable(err) || ctx.Err() != nil {
			break
		}
	}
	e.mu.Lock()
	e.stats.Failures++
	e.mu.Unlock()
	return err
}

// Backoff exposes the policy's delay schedule for tests and tables:
// the nominal (jitter-free) delay before the given retry.
func (p Policy) Backoff(retry int) time.Duration { return p.delay(retry, nil) }
