package resilience

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"softreputation/internal/vclock"
)

func TestScheduleWindowsAndEveryN(t *testing.T) {
	start := vclock.Epoch
	s := Schedule{Start: start, Windows: []Window{
		{From: time.Minute, To: 2 * time.Minute, Mode: FaultDrop},
	}}
	if _, ok := s.at(start); ok {
		t.Fatal("matched before the window")
	}
	if w, ok := s.at(start.Add(90 * time.Second)); !ok || w.Mode != FaultDrop {
		t.Fatalf("window not matched: %+v %v", w, ok)
	}
	if _, ok := s.at(start.Add(2 * time.Minute)); ok {
		t.Fatal("window end must be exclusive")
	}
}

func TestFaultTransportDeterministicOutage(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	clock := vclock.NewVirtual(vclock.Epoch)
	ft := &FaultTransport{
		Base:  ts.Client().Transport,
		Clock: clock,
		Schedule: Schedule{Start: vclock.Epoch, Windows: []Window{
			{From: time.Hour, To: 2 * time.Hour, Mode: FaultPartition, Latency: time.Second},
		}},
	}
	httpc := &http.Client{Transport: ft}

	// Before the outage: requests pass.
	resp, err := httpc.Get(ts.URL)
	if err != nil {
		t.Fatalf("healthy request failed: %v", err)
	}
	resp.Body.Close()

	// Inside the outage: every request burns the connect cost and fails.
	clock.Advance(time.Hour)
	before := clock.Now()
	if _, err := httpc.Get(ts.URL); err == nil {
		t.Fatal("partitioned request succeeded")
	}
	if got := clock.Now().Sub(before); got != time.Second {
		t.Fatalf("connect cost = %v, want 1s", got)
	}

	// After the outage: healthy again.
	clock.Advance(time.Hour)
	resp, err = httpc.Get(ts.URL)
	if err != nil {
		t.Fatalf("post-outage request failed: %v", err)
	}
	resp.Body.Close()

	st := ft.Stats()
	if st.Requests != 3 || st.Dropped != 1 || st.AddedLatency != time.Second {
		t.Fatalf("stats = %+v", st)
	}
}

func TestFaultTransportUnavailableAndEveryN(t *testing.T) {
	calls := 0
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls++
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	clock := vclock.NewVirtual(vclock.Epoch)
	ft := &FaultTransport{
		Base:  ts.Client().Transport,
		Clock: clock,
		Schedule: Schedule{Start: vclock.Epoch, Windows: []Window{
			{From: 0, To: time.Hour, Mode: FaultUnavailable, EveryN: 2, RetryAfter: 3 * time.Second},
		}},
	}
	httpc := &http.Client{Transport: ft}

	// 1st request faulted, 2nd passes, 3rd faulted, 4th passes.
	codes := make([]int, 0, 4)
	for i := 0; i < 4; i++ {
		resp, err := httpc.Get(ts.URL)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		codes = append(codes, resp.StatusCode)
		if resp.StatusCode == http.StatusServiceUnavailable {
			if ra := resp.Header.Get("Retry-After"); ra != "3" {
				t.Fatalf("Retry-After = %q", ra)
			}
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}
	want := []int{503, 200, 503, 200}
	for i := range want {
		if codes[i] != want[i] {
			t.Fatalf("codes = %v, want %v", codes, want)
		}
	}
	if calls != 2 {
		t.Fatalf("server saw %d calls, want 2", calls)
	}
	if st := ft.Stats(); st.Unavailable != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBackoffGrowthAndCap(t *testing.T) {
	p := Policy{MaxAttempts: 6, BaseDelay: 100 * time.Millisecond, MaxDelay: 500 * time.Millisecond, Multiplier: 2}
	want := []time.Duration{
		100 * time.Millisecond, 200 * time.Millisecond, 400 * time.Millisecond,
		500 * time.Millisecond, 500 * time.Millisecond,
	}
	for i, w := range want {
		if got := p.Backoff(i + 1); got != w {
			t.Fatalf("backoff(%d) = %v, want %v", i+1, got, w)
		}
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{errors.New("connection refused"), true},
		{&HTTPStatusError{Status: 503, Err: errors.New("x")}, true},
		{&HTTPStatusError{Status: 429, Err: errors.New("x")}, true},
		{&HTTPStatusError{Status: 404, Err: errors.New("x")}, false},
		{&HTTPStatusError{Status: 409, Err: errors.New("x")}, false},
		{ErrOpen, false},
		{context.Canceled, false},
		{context.DeadlineExceeded, true}, // an attempt deadline: try again
	}
	for _, c := range cases {
		if got := Retryable(c.err); got != c.want {
			t.Fatalf("Retryable(%v) = %v, want %v", c.err, got, c.want)
		}
	}
}

func TestBreakerLifecycle(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	b := NewBreaker(3, time.Minute, clock)
	fail := errors.New("connection refused")

	// Three consecutive transient failures trip the circuit.
	for i := 0; i < 3; i++ {
		if err := b.Allow(); err != nil {
			t.Fatalf("closed breaker rejected call %d", i)
		}
		b.Record(fail)
	}
	if b.State() != Open {
		t.Fatalf("state = %v, want open", b.State())
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatalf("open breaker allowed a call: %v", err)
	}

	// After the cooldown: exactly one probe goes through.
	clock.Advance(time.Minute)
	if b.State() != HalfOpen {
		t.Fatalf("state = %v, want half-open", b.State())
	}
	if err := b.Allow(); err != nil {
		t.Fatalf("half-open breaker rejected the probe: %v", err)
	}
	if err := b.Allow(); !errors.Is(err, ErrOpen) {
		t.Fatal("second concurrent probe allowed")
	}

	// A failed probe reopens; a later successful probe closes.
	b.Record(fail)
	if b.State() != Open {
		t.Fatalf("state after failed probe = %v", b.State())
	}
	clock.Advance(time.Minute)
	if err := b.Allow(); err != nil {
		t.Fatal("probe after second cooldown rejected")
	}
	b.Record(nil)
	if b.State() != Closed {
		t.Fatalf("state after good probe = %v", b.State())
	}
	st := b.Stats()
	if st.Opens != 2 || st.Probes != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestBreakerApplicationErrorsDoNotTrip(t *testing.T) {
	b := NewBreaker(2, time.Minute, vclock.NewVirtual(vclock.Epoch))
	notFound := &HTTPStatusError{Status: 404, Err: errors.New("not-found")}
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("breaker tripped on 4xx")
		}
		b.Record(notFound)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestExecutorRetriesThenSucceeds(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	e := NewExecutor(Policy{MaxAttempts: 4, BaseDelay: time.Second, Multiplier: 2}, nil, clock, 1)
	attempts := 0
	err := e.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil || attempts != 3 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
	// Two backoffs consumed virtual time: 1s + 2s.
	if got := clock.Now().Sub(vclock.Epoch); got != 3*time.Second {
		t.Fatalf("virtual backoff = %v, want 3s", got)
	}
	st := e.Stats()
	if st.Attempts != 3 || st.Retries != 2 || st.Failures != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestExecutorHonoursRetryAfter(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	e := NewExecutor(Policy{MaxAttempts: 2, BaseDelay: 100 * time.Millisecond}, nil, clock, 1)
	overloaded := &HTTPStatusError{Status: 503, RetryAfter: 5 * time.Second, Err: errors.New("busy")}
	attempts := 0
	e.Do(context.Background(), func(context.Context) error {
		attempts++
		if attempts == 1 {
			return overloaded
		}
		return nil
	})
	hint := 5 * time.Second
	if got := clock.Now().Sub(vclock.Epoch); got < hint || got > hint+hint/4 {
		t.Fatalf("waited %v, want within [hint, 1.25*hint] of the 5s Retry-After", got)
	}
}

func TestExecutorJittersRetryAfterHint(t *testing.T) {
	// Different executors (different jitter seeds) receiving the same
	// Retry-After hint must not wake up at the same instant — the hint
	// is a floor, not a schedule.
	hint := 4 * time.Second
	overloaded := &HTTPStatusError{Status: 429, RetryAfter: hint, Err: errors.New("overloaded")}
	waits := make(map[time.Duration]bool)
	for seed := int64(1); seed <= 8; seed++ {
		clock := vclock.NewVirtual(vclock.Epoch)
		e := NewExecutor(Policy{MaxAttempts: 2, BaseDelay: time.Millisecond}, nil, clock, seed)
		attempts := 0
		e.Do(context.Background(), func(context.Context) error {
			attempts++
			if attempts == 1 {
				return overloaded
			}
			return nil
		})
		got := clock.Now().Sub(vclock.Epoch)
		if got < hint || got > hint+hint/4 {
			t.Fatalf("seed %d waited %v, want within [hint, 1.25*hint]", seed, got)
		}
		waits[got] = true
	}
	if len(waits) < 2 {
		t.Fatalf("all executors retried in lockstep at %v", waits)
	}
}

func TestIsShedClassification(t *testing.T) {
	shed := &HTTPStatusError{Status: 429, Err: errors.New("overloaded")}
	if !IsShed(shed) {
		t.Fatal("429 not classified as shed")
	}
	if !Retryable(shed) {
		t.Fatal("sheds must stay retryable")
	}
	for _, err := range []error{
		&HTTPStatusError{Status: 503, Err: errors.New("draining")},
		&HTTPStatusError{Status: 500, Err: errors.New("boom")},
		errors.New("connection refused"),
		nil,
	} {
		if IsShed(err) {
			t.Fatalf("IsShed(%v) = true", err)
		}
	}
}

func TestBreakerShedsDoNotTrip(t *testing.T) {
	b := NewBreaker(2, time.Minute, vclock.NewVirtual(vclock.Epoch))
	shed := &HTTPStatusError{Status: 429, Err: errors.New("overloaded")}
	for i := 0; i < 10; i++ {
		if err := b.Allow(); err != nil {
			t.Fatal("breaker tripped on 429 sheds")
		}
		b.Record(shed)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v, want closed", b.State())
	}

	// A shed also resets the failure streak: the server answered, so it
	// is not on the way down.
	fail := errors.New("connection refused")
	b.Record(fail)
	b.Record(shed)
	b.Record(fail)
	if b.State() != Closed {
		t.Fatal("interleaved sheds did not reset the failure streak")
	}
}

func TestExecutorDoesNotRetryApplicationErrors(t *testing.T) {
	e := NewExecutor(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, nil, vclock.NewVirtual(vclock.Epoch), 1)
	attempts := 0
	bad := &HTTPStatusError{Status: 409, Err: errors.New("already-rated")}
	err := e.Do(context.Background(), func(context.Context) error {
		attempts++
		return bad
	})
	if !errors.Is(err, bad) || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}

func TestExecutorFastFailsWhenOpen(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	b := NewBreaker(2, time.Minute, clock)
	e := NewExecutor(Policy{MaxAttempts: 1}, b, clock, 1)
	fail := errors.New("refused")
	for i := 0; i < 2; i++ {
		e.Do(context.Background(), func(context.Context) error { return fail })
	}
	attempts := 0
	err := e.Do(context.Background(), func(context.Context) error { attempts++; return nil })
	if !errors.Is(err, ErrOpen) || attempts != 0 {
		t.Fatalf("open circuit: err=%v attempts=%d", err, attempts)
	}
	if e.Stats().FastFails != 1 {
		t.Fatalf("stats = %+v", e.Stats())
	}

	// Cooldown over: the probe closes the circuit again.
	clock.Advance(time.Minute)
	if err := e.Do(context.Background(), func(context.Context) error { return nil }); err != nil {
		t.Fatalf("probe failed: %v", err)
	}
	if b.State() != Closed {
		t.Fatalf("state = %v", b.State())
	}
}

func TestExecutorStopsOnCancelledParent(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	e := NewExecutor(Policy{MaxAttempts: 5, BaseDelay: time.Millisecond}, nil, vclock.NewVirtual(vclock.Epoch), 1)
	attempts := 0
	err := e.Do(ctx, func(context.Context) error {
		attempts++
		cancel()
		return errors.New("transient")
	})
	if err == nil || attempts != 1 {
		t.Fatalf("err=%v attempts=%d", err, attempts)
	}
}
