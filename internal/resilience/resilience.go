// Package resilience engineers the failure behaviour of the
// client↔server path. The paper's exec hook blocks program execution
// until the reputation server answers (§3.1), and §4.2 names system
// stability as the key deployment risk — so every network failure mode
// must be reproducible, bounded and measurable.
//
// The package provides four cooperating pieces:
//
//   - FaultTransport: a deterministic, virtual-clock-driven
//     http.RoundTripper that injects latency, dropped connections,
//     503 bursts and full partitions on a schedule, so tests and
//     experiments replay identical outages.
//   - Policy: retry with exponential backoff, jitter and per-attempt
//     deadlines, honouring server Retry-After hints.
//   - Breaker: a closed/open/half-open circuit breaker that fast-fails
//     calls while the server is known dead and probes for recovery.
//   - Executor: the composition of retry and breaker that the client's
//     API wraps every wire call in.
//
// Everything takes a vclock.Clock: under a virtual clock, backoff and
// injected latency advance simulated time instead of sleeping, which
// keeps chaos experiments (E17) fast and exactly repeatable.
package resilience

import (
	"context"
	"errors"
	"fmt"
	"time"

	"softreputation/internal/vclock"
)

// Sleeper spends a backoff or injected-latency duration. The real
// implementation blocks; the virtual one advances a simulated clock.
type Sleeper interface {
	// Sleep waits for d or until ctx is done, returning ctx.Err() in
	// the latter case.
	Sleep(ctx context.Context, d time.Duration) error
}

// RealSleeper blocks on the wall clock.
type RealSleeper struct{}

// Sleep implements Sleeper.
func (RealSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// VirtualSleeper advances a virtual clock instead of blocking, so
// simulated outages and backoff schedules cost no wall time.
type VirtualSleeper struct {
	Clock *vclock.Virtual
}

// Sleep implements Sleeper.
func (s VirtualSleeper) Sleep(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	s.Clock.Advance(d)
	return nil
}

// SleeperFor selects the sleeper matching a clock: virtual clocks get
// a VirtualSleeper, everything else the real one.
func SleeperFor(clock vclock.Clock) Sleeper {
	if v, ok := clock.(*vclock.Virtual); ok {
		return VirtualSleeper{Clock: v}
	}
	return RealSleeper{}
}

// HTTPStatusError reports a non-2xx response. The client API wraps
// every wire-level error in one, so retry logic can classify by status
// while errors.As still reaches the decoded wire error underneath.
type HTTPStatusError struct {
	// Status is the HTTP status code.
	Status int
	// RetryAfter is the server's Retry-After hint, zero when absent.
	RetryAfter time.Duration
	// Err is the decoded wire error or a generic status error.
	Err error
}

// Error implements error.
func (e *HTTPStatusError) Error() string {
	return fmt.Sprintf("http %d: %v", e.Status, e.Err)
}

// Unwrap exposes the wrapped wire error to errors.Is/As.
func (e *HTTPStatusError) Unwrap() error { return e.Err }

// ErrOpen is returned when the circuit breaker fast-fails a call
// without touching the network.
var ErrOpen = errors.New("resilience: circuit breaker open")

// Retryable classifies an error from one attempt: transport failures,
// timeouts, 5xx and 429 responses are worth retrying; application
// errors (4xx) and a fast-failing breaker are not. Context
// cancellation is handled separately by the Executor, which always
// stops when the parent context is done.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, ErrOpen) || errors.Is(err, context.Canceled) {
		return false
	}
	var se *HTTPStatusError
	if errors.As(err, &se) {
		return se.Status >= 500 || se.Status == 429
	}
	// Transport-level failures (connection refused, resets, attempt
	// deadlines) are transient by assumption.
	return true
}

// IsShed reports whether an error is a deliberate overload shed (HTTP
// 429): the server is alive and chose not to serve this request. Sheds
// are retryable (with backoff, honouring Retry-After) but are not
// evidence of a dead endpoint — the circuit breaker must not trip on
// them and the failover client must not abandon the endpoint.
func IsShed(err error) bool {
	var se *HTTPStatusError
	return errors.As(err, &se) && se.Status == 429
}

// RetryAfterHint extracts the server's Retry-After suggestion from an
// error, when one was sent.
func RetryAfterHint(err error) (time.Duration, bool) {
	var se *HTTPStatusError
	if errors.As(err, &se) && se.RetryAfter > 0 {
		return se.RetryAfter, true
	}
	return 0, false
}
