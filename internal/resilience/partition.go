package resilience

import (
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"softreputation/internal/vclock"
)

// PartitionNet is a topology-level partition injector: where
// FaultTransport faults one client's requests on a schedule,
// PartitionNet models the network between named nodes and lets an
// experiment cut, degrade, and heal individual links mid-run. Every
// node's outbound traffic goes through a Transport that resolves the
// destination node from the request URL and consults the link table,
// so one injector coherently partitions an entire deployment:
//
//	net := resilience.NewPartitionNet(seed, clock)
//	net.AddNode("p", primaryURL)
//	net.AddNode("r1", replica1URL)
//	clientA := &http.Client{Transport: net.Transport("a", nil)}
//
//	net.Cut("a", "p")            // symmetric blackhole
//	net.CutOneWay("r1", "p")     // r1's requests to p vanish; p->r1 open
//	net.LoseReplies("a", "p")    // requests ARRIVE, replies are lost
//	net.CutFor("a", "p", 10*time.Minute) // heals itself on the clock
//	net.Isolate("p")             // p loses every link
//	net.HealAll()
//
// Cuts are directional under the hood — Cut installs both directions,
// CutOneWay and LoseReplies only one — which is what asymmetric
// split-brain scenarios need: a deposed primary that can still hear
// clients but not its peers, an acked write whose ack never came back.
//
// Timed cuts heal lazily against the injector's clock: with a virtual
// clock a ten-minute partition heals the instant the experiment
// advances past it, deterministically. The seed feeds a private rng
// used to jitter the connect cost of blackholed sends so retry storms
// in a simulation don't phase-lock, without touching global rand.
type PartitionNet struct {
	// ConnectCost is the virtual time a blackholed send burns before
	// failing — the dial timeout from the caller's point of view. Zero
	// fails instantly. The actual cost of each send is jittered over
	// [ConnectCost/2, ConnectCost] from the injector's seed.
	ConnectCost time.Duration

	clock vclock.Clock
	rng   *rand.Rand

	mu    sync.Mutex
	nodes []netNode
	cuts  map[linkKey]cut
	stats map[linkKey]*LinkStats
}

// netNode maps a name to its base URL for destination resolution.
type netNode struct {
	name, base string
}

// linkKey identifies one direction of one link.
type linkKey struct {
	from, to string
}

// LinkMode is what one direction of a link does to traffic.
type LinkMode int

// Link modes.
const (
	// LinkOpen delivers traffic untouched.
	LinkOpen LinkMode = iota
	// LinkBlackhole drops requests before they reach the destination.
	LinkBlackhole
	// LinkLoseReplies delivers the request — its side effects happen on
	// the destination — but drops the reply, so the sender sees a
	// connection failure for work that actually committed. This is the
	// partition mode that manufactures "acked on the old primary only"
	// ratings: the server acked, nobody heard.
	LinkLoseReplies
)

// String names the mode for tables and logs.
func (m LinkMode) String() string {
	switch m {
	case LinkOpen:
		return "open"
	case LinkBlackhole:
		return "blackhole"
	case LinkLoseReplies:
		return "lose-replies"
	}
	return "mode?"
}

// cut is one direction's installed fault.
type cut struct {
	mode LinkMode
	// healAt self-heals the cut when the clock reaches it; zero means
	// the cut holds until Heal/HealAll.
	healAt time.Time
}

// LinkStats counts one direction's traffic.
type LinkStats struct {
	// Delivered counts requests that reached the destination and whose
	// replies made it back.
	Delivered int
	// DroppedRequests counts sends blackholed before arrival.
	DroppedRequests int
	// DroppedReplies counts requests that arrived but whose replies
	// were lost.
	DroppedReplies int
}

// NewPartitionNet builds an injector. A nil clock selects the system
// clock; simulations pass their virtual clock so timed cuts heal in
// virtual time.
func NewPartitionNet(seed int64, clock vclock.Clock) *PartitionNet {
	if clock == nil {
		clock = vclock.Real{}
	}
	return &PartitionNet{
		clock: clock,
		rng:   rand.New(rand.NewSource(seed)),
		cuts:  make(map[linkKey]cut),
		stats: make(map[linkKey]*LinkStats),
	}
}

// AddNode registers a node and the base URL its inbound traffic is
// addressed to. Longest base match wins when one URL prefixes another.
func (n *PartitionNet) AddNode(name, baseURL string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.nodes = append(n.nodes, netNode{name: name, base: strings.TrimSuffix(baseURL, "/")})
	sort.Slice(n.nodes, func(i, j int) bool {
		return len(n.nodes[i].base) > len(n.nodes[j].base)
	})
}

// resolve names the node a URL addresses, or "".
func (n *PartitionNet) resolve(url string) string {
	n.mu.Lock()
	defer n.mu.Unlock()
	for _, nd := range n.nodes {
		if strings.HasPrefix(url, nd.base) {
			return nd.name
		}
	}
	return ""
}

func (n *PartitionNet) setCut(from, to string, mode LinkMode, healAt time.Time) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts[linkKey{from, to}] = cut{mode: mode, healAt: healAt}
}

// Cut blackholes the link between a and b in both directions.
func (n *PartitionNet) Cut(a, b string) {
	n.setCut(a, b, LinkBlackhole, time.Time{})
	n.setCut(b, a, LinkBlackhole, time.Time{})
}

// CutOneWay blackholes only from->to traffic; the reverse direction
// keeps whatever state it has. This is the asymmetric partition: from
// cannot reach to, but to still reaches from.
func (n *PartitionNet) CutOneWay(from, to string) {
	n.setCut(from, to, LinkBlackhole, time.Time{})
}

// LoseReplies delivers from->to requests but drops every reply.
func (n *PartitionNet) LoseReplies(from, to string) {
	n.setCut(from, to, LinkLoseReplies, time.Time{})
}

// CutFor blackholes a<->b, self-healing after d on the injector's
// clock. The heal is lazy: it takes effect on the first send at or
// past the deadline, which with a virtual clock means the instant the
// experiment advances past it.
func (n *PartitionNet) CutFor(a, b string, d time.Duration) {
	healAt := n.clock.Now().Add(d)
	n.setCut(a, b, LinkBlackhole, healAt)
	n.setCut(b, a, LinkBlackhole, healAt)
}

// Isolate cuts every link touching the named node, both directions.
func (n *PartitionNet) Isolate(name string) {
	n.mu.Lock()
	peers := make([]string, 0, len(n.nodes))
	for _, nd := range n.nodes {
		if nd.name != name {
			peers = append(peers, nd.name)
		}
	}
	n.mu.Unlock()
	for _, p := range peers {
		n.Cut(name, p)
	}
}

// Heal reopens a<->b in both directions.
func (n *PartitionNet) Heal(a, b string) {
	n.mu.Lock()
	defer n.mu.Unlock()
	delete(n.cuts, linkKey{a, b})
	delete(n.cuts, linkKey{b, a})
}

// HealAll reopens every link.
func (n *PartitionNet) HealAll() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.cuts = make(map[linkKey]cut)
}

// Partitioned reports whether from->to traffic is currently faulted
// (timed cuts past their deadline count as healed).
func (n *PartitionNet) Partitioned(from, to string) bool {
	return n.linkMode(from, to) != LinkOpen
}

// linkMode reads one direction's current mode, expiring timed cuts.
func (n *PartitionNet) linkMode(from, to string) LinkMode {
	now := n.clock.Now()
	n.mu.Lock()
	defer n.mu.Unlock()
	key := linkKey{from, to}
	c, ok := n.cuts[key]
	if !ok {
		return LinkOpen
	}
	if !c.healAt.IsZero() && !now.Before(c.healAt) {
		delete(n.cuts, key)
		return LinkOpen
	}
	return c.mode
}

// Stats snapshots one direction's counters.
func (n *PartitionNet) Stats(from, to string) LinkStats {
	n.mu.Lock()
	defer n.mu.Unlock()
	if s := n.stats[linkKey{from, to}]; s != nil {
		return *s
	}
	return LinkStats{}
}

func (n *PartitionNet) count(from, to string, f func(*LinkStats)) {
	n.mu.Lock()
	defer n.mu.Unlock()
	key := linkKey{from, to}
	s := n.stats[key]
	if s == nil {
		s = &LinkStats{}
		n.stats[key] = s
	}
	f(s)
}

// connectCost jitters the blackhole dial timeout from the seed.
func (n *PartitionNet) connectCost() time.Duration {
	if n.ConnectCost <= 0 {
		return 0
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	half := n.ConnectCost / 2
	return half + time.Duration(n.rng.Int63n(int64(half)+1))
}

// Transport returns the RoundTripper carrying the named node's
// outbound traffic. base nil selects http.DefaultTransport. Requests
// to URLs that resolve to no registered node pass through untouched.
func (n *PartitionNet) Transport(from string, base http.RoundTripper) http.RoundTripper {
	if base == nil {
		base = http.DefaultTransport
	}
	return &partitionTransport{net: n, from: from, base: base}
}

// partitionTransport is one node's outbound edge into the net.
type partitionTransport struct {
	net  *PartitionNet
	from string
	base http.RoundTripper
}

// RoundTrip implements http.RoundTripper.
func (t *partitionTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	to := t.net.resolve(req.URL.String())
	if to == "" {
		return t.base.RoundTrip(req)
	}
	switch t.net.linkMode(t.from, to) {
	case LinkBlackhole:
		t.net.count(t.from, to, func(s *LinkStats) { s.DroppedRequests++ })
		if cost := t.net.connectCost(); cost > 0 {
			if err := SleeperFor(t.net.clock).Sleep(req.Context(), cost); err != nil {
				return nil, err
			}
		}
		if req.Body != nil {
			io.Copy(io.Discard, req.Body)
			req.Body.Close()
		}
		return nil, &faultError{mode: FaultPartition}
	case LinkLoseReplies:
		// The request goes through — whatever it does on the far side
		// happens — and then the reply evaporates.
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}
		t.net.count(t.from, to, func(s *LinkStats) { s.DroppedReplies++ })
		return nil, &faultError{mode: FaultPartition}
	default:
		resp, err := t.base.RoundTrip(req)
		if err == nil {
			t.net.count(t.from, to, func(s *LinkStats) { s.Delivered++ })
		}
		return resp, err
	}
}
