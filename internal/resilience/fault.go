package resilience

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"softreputation/internal/vclock"
)

// FaultMode selects what a fault window does to matched requests.
type FaultMode int

// Fault modes.
const (
	// FaultNone passes requests through untouched (after any Latency).
	FaultNone FaultMode = iota
	// FaultLatency only adds the window's Latency.
	FaultLatency
	// FaultDrop fails the connection after the Latency (a reset or a
	// dial timeout, from the caller's point of view).
	FaultDrop
	// FaultUnavailable answers 503 with a Retry-After hint without
	// reaching the server — an overloaded or load-shedding backend.
	FaultUnavailable
	// FaultPartition models a full network partition: every request
	// burns the Latency (the connect timeout) and fails.
	FaultPartition
)

// String names the mode for tables and logs.
func (m FaultMode) String() string {
	switch m {
	case FaultNone:
		return "none"
	case FaultLatency:
		return "latency"
	case FaultDrop:
		return "drop"
	case FaultUnavailable:
		return "503"
	case FaultPartition:
		return "partition"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// Window is one scheduled fault interval, expressed as offsets from
// the schedule start so profiles are position-independent.
type Window struct {
	// From and To bound the window: a request at instant t is matched
	// when Start+From <= t < Start+To.
	From, To time.Duration
	// Mode is the fault applied to matched requests.
	Mode FaultMode
	// Latency is added to every matched request before the fault
	// outcome; for Drop/Partition it models the connect timeout.
	Latency time.Duration
	// EveryN faults only every Nth matched request (1st, N+1th, …);
	// 0 or 1 faults all of them. Latency always applies.
	EveryN int
	// RetryAfter is the Retry-After hint sent with FaultUnavailable;
	// zero sends none.
	RetryAfter time.Duration
}

// Schedule is a deterministic fault plan anchored at a start instant.
type Schedule struct {
	// Start anchors the windows' offsets.
	Start time.Time
	// Windows are checked in order; the first match applies.
	Windows []Window
}

// Outage is a convenience schedule: a full partition over [from, to)
// where every attempt costs connectCost of (virtual) time.
func Outage(start time.Time, from, to, connectCost time.Duration) Schedule {
	return Schedule{Start: start, Windows: []Window{
		{From: from, To: to, Mode: FaultPartition, Latency: connectCost},
	}}
}

// at returns the window covering instant t, if any.
func (s Schedule) at(t time.Time) (Window, bool) {
	off := t.Sub(s.Start)
	for _, w := range s.Windows {
		if off >= w.From && off < w.To {
			return w, true
		}
	}
	return Window{}, false
}

// FaultStats counts what the injector did.
type FaultStats struct {
	// Requests is every request seen, faulted or not.
	Requests int
	// Dropped counts connections failed by Drop/Partition windows.
	Dropped int
	// Unavailable counts synthesized 503 responses.
	Unavailable int
	// AddedLatency is the total injected delay.
	AddedLatency time.Duration
}

// FaultTransport is a deterministic fault-injecting http.RoundTripper.
// Faults follow the Schedule on the given clock; with a virtual clock
// the injected latency advances simulated time, so a two-hour outage
// replays in microseconds and identically on every run.
type FaultTransport struct {
	// Base performs non-faulted requests; nil selects
	// http.DefaultTransport.
	Base http.RoundTripper
	// Clock positions requests on the schedule; nil selects the
	// system clock.
	Clock vclock.Clock
	// Schedule is the fault plan.
	Schedule Schedule

	mu      sync.Mutex
	matched int // matched-request counter driving EveryN
	stats   FaultStats
}

// Stats returns a snapshot of the injector's counters.
func (t *FaultTransport) Stats() FaultStats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// faultError is a synthetic connection failure.
type faultError struct {
	mode FaultMode
}

func (e *faultError) Error() string {
	return fmt.Sprintf("resilience: injected fault: connection %s", e.mode)
}

// Timeout marks the error as a timeout so net-aware callers treat it
// like a dial deadline.
func (e *faultError) Timeout() bool { return true }

// RoundTrip implements http.RoundTripper.
func (t *FaultTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	clock := t.Clock
	if clock == nil {
		clock = vclock.Real{}
	}
	now := clock.Now()

	t.mu.Lock()
	t.stats.Requests++
	w, ok := t.Schedule.at(now)
	fault := false
	if ok {
		t.matched++
		fault = w.EveryN <= 1 || (t.matched-1)%w.EveryN == 0
		if w.Latency > 0 {
			t.stats.AddedLatency += w.Latency
		}
	}
	t.mu.Unlock()

	if ok && w.Latency > 0 {
		if err := SleeperFor(clock).Sleep(req.Context(), w.Latency); err != nil {
			return nil, err
		}
	}
	if !ok || !fault || w.Mode == FaultNone || w.Mode == FaultLatency {
		return t.base().RoundTrip(req)
	}

	// The faulted request never reaches the server; release its body.
	if req.Body != nil {
		io.Copy(io.Discard, req.Body)
		req.Body.Close()
	}
	switch w.Mode {
	case FaultUnavailable:
		t.mu.Lock()
		t.stats.Unavailable++
		t.mu.Unlock()
		return unavailableResponse(req, w.RetryAfter), nil
	default: // FaultDrop, FaultPartition
		t.mu.Lock()
		t.stats.Dropped++
		t.mu.Unlock()
		return nil, &faultError{mode: w.Mode}
	}
}

func (t *FaultTransport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

// unavailableResponse synthesizes the load-shedding 503 the real
// server sends, Retry-After hint included.
func unavailableResponse(req *http.Request, retryAfter time.Duration) *http.Response {
	body := `<?xml version="1.0" encoding="UTF-8"?>` + "\n" +
		`<error code="unavailable">injected fault: server overloaded</error>`
	h := make(http.Header)
	h.Set("Content-Type", "application/xml; charset=utf-8")
	if retryAfter > 0 {
		secs := int(retryAfter / time.Second)
		if secs < 1 {
			secs = 1
		}
		h.Set("Retry-After", strconv.Itoa(secs))
	}
	return &http.Response{
		Status:        "503 Service Unavailable",
		StatusCode:    http.StatusServiceUnavailable,
		Proto:         "HTTP/1.1",
		ProtoMajor:    1,
		ProtoMinor:    1,
		Header:        h,
		Body:          io.NopCloser(bytes.NewReader([]byte(body))),
		ContentLength: int64(len(body)),
		Request:       req,
	}
}
