package resilience

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"softreputation/internal/telemetry"
	"softreputation/internal/vclock"
)

func TestRegisterMetrics(t *testing.T) {
	clock := vclock.NewVirtual(vclock.Epoch)
	br := NewBreaker(2, time.Hour, clock)
	exec := NewExecutor(Policy{MaxAttempts: 2}, br, clock, 1)

	reg := telemetry.NewRegistry()
	exec.RegisterMetrics(reg, "primary")
	if problems := reg.Lint(); len(problems) != 0 {
		t.Fatalf("lint: %v", problems)
	}

	boom := errors.New("boom")
	for i := 0; i < 2; i++ {
		_ = exec.Do(context.Background(), func(context.Context) error { return boom })
	}

	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	// Call 1 burns both attempts and trips the breaker (threshold 2);
	// call 2 is fast-failed by the open circuit.
	for _, want := range []string{
		`reputation_resilience_calls_total{executor="primary"} 2`,
		`reputation_resilience_retries_total{executor="primary"} 1`,
		`reputation_resilience_fast_fails_total{executor="primary"} 1`,
		`reputation_resilience_breaker_state{executor="primary"} 1`,
		`reputation_resilience_breaker_opens_total{executor="primary"} 1`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
}
