package core

import (
	"errors"
	"fmt"
	"time"
)

// Ratings, comments, remarks and score aggregation (§3.1–3.3).

// Rating score bounds: "grading it between 1 and 10".
const (
	ScoreMin = 1
	ScoreMax = 10
)

// ErrScoreRange is returned for scores outside [ScoreMin, ScoreMax].
var ErrScoreRange = errors.New("core: score must be between 1 and 10")

// ValidateScore checks a raw score against the 1–10 scale.
func ValidateScore(score int) error {
	if score < ScoreMin || score > ScoreMax {
		return fmt.Errorf("%w: got %d", ErrScoreRange, score)
	}
	return nil
}

// Rating is one user's vote on one software executable. The server
// enforces that each user rates each software exactly once (§2.1).
type Rating struct {
	// UserID identifies the voter.
	UserID string
	// Software identifies the rated executable.
	Software SoftwareID
	// Score is the 1–10 grade.
	Score int
	// Behaviors are the concrete behaviours the user reported observing.
	Behaviors Behavior
	// At is when the vote was cast.
	At time.Time
}

// Comment is free-text feedback attached to a rating.
type Comment struct {
	// ID is the server-assigned comment identifier.
	ID uint64
	// UserID identifies the author.
	UserID string
	// Software identifies the commented executable.
	Software SoftwareID
	// Text is the comment body.
	Text string
	// At is when the comment was submitted.
	At time.Time
	// Positive and Negative count the remarks received (§3.2).
	Positive int
	Negative int
	// Hidden marks a comment awaiting moderator approval (§2.1's
	// administrator approach); hidden comments are not published.
	Hidden bool
}

// Remark is one user's judgement of another user's comment: "positive
// for a good, clear and useful comment or negative for a coloured,
// non-sense or meaningless comment" (§3.2). Remarks drive trust factors.
type Remark struct {
	// UserID identifies the remark author.
	UserID string
	// CommentID identifies the judged comment.
	CommentID uint64
	// Positive is the remark's polarity.
	Positive bool
	// At is when the remark was submitted.
	At time.Time
}

// WeightedVote pairs a score with the voter's trust factor for
// aggregation.
type WeightedVote struct {
	// Score is the 1–10 grade.
	Score int
	// Trust is the voter's trust factor at aggregation time.
	Trust float64
}

// AggregationPolicy selects how software scores are computed from votes.
type AggregationPolicy struct {
	// Weighted applies trust factors as vote weights (§3.2). Disabling
	// it is the ablation baseline: every vote counts equally.
	Weighted bool
	// PriorVotes and PriorScore add Bayesian smoothing: the score
	// behaves as if PriorVotes phantom votes of PriorScore had been
	// cast. Zero PriorVotes disables smoothing. Smoothing tempers the
	// budding-phase problem of §2.1, where a handful of ignorant votes
	// dominates an unrated program.
	PriorVotes float64
	PriorScore float64
}

// DefaultAggregationPolicy is the deployed configuration: trust-weighted
// votes, no smoothing.
func DefaultAggregationPolicy() AggregationPolicy {
	return AggregationPolicy{Weighted: true}
}

// Aggregate computes a software score from votes under the policy.
// It returns 0 when there are no votes and no prior. Scores stay within
// [ScoreMin, ScoreMax] whenever at least one vote or prior is present.
func (p AggregationPolicy) Aggregate(votes []WeightedVote) float64 {
	var num, den float64
	for _, v := range votes {
		w := 1.0
		if p.Weighted {
			w = v.Trust
			if w < TrustMin {
				w = TrustMin
			}
		}
		num += w * float64(v.Score)
		den += w
	}
	if p.PriorVotes > 0 {
		num += p.PriorVotes * p.PriorScore
		den += p.PriorVotes
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// SoftwareScore is the published rating of one executable after an
// aggregation run.
type SoftwareScore struct {
	// Software identifies the executable.
	Software SoftwareID
	// Score is the aggregated 1–10 rating, 0 when unrated.
	Score float64
	// Votes is the number of votes aggregated.
	Votes int
	// Behaviors is the union of behaviours reported by a meaningful
	// share of voters (see BehaviorConsensus).
	Behaviors Behavior
	// ComputedAt is when the aggregation ran.
	ComputedAt time.Time
}

// BehaviorConsensusThreshold is the fraction of voters that must report
// a behaviour for it to be published as part of the software's profile.
// A simple majority-free threshold keeps one confused voter from
// labelling a program a keylogger while still surfacing behaviours long
// before everyone notices them.
const BehaviorConsensusThreshold = 0.3

// BehaviorConsensus returns the union of behaviour flags reported by at
// least BehaviorConsensusThreshold of the voters (weighted by trust when
// weighted aggregation is selected).
func (p AggregationPolicy) BehaviorConsensus(votes []WeightedVote, behaviors []Behavior) Behavior {
	if len(votes) != len(behaviors) {
		panic("core: BehaviorConsensus length mismatch")
	}
	if len(votes) == 0 {
		return 0
	}
	var total float64
	perFlag := make([]float64, NumBehaviors)
	for i, v := range votes {
		w := 1.0
		if p.Weighted {
			w = v.Trust
			if w < TrustMin {
				w = TrustMin
			}
		}
		total += w
		for bit := 0; bit < NumBehaviors; bit++ {
			if behaviors[i]&(1<<bit) != 0 {
				perFlag[bit] += w
			}
		}
	}
	var out Behavior
	for bit := 0; bit < NumBehaviors; bit++ {
		if perFlag[bit] >= BehaviorConsensusThreshold*total {
			out |= 1 << bit
		}
	}
	return out
}

// VendorScore is the derived company-level rating of §3.3: "simply
// calculating the average score of all software belonging to the
// particular vendor".
type VendorScore struct {
	// Vendor is the company name.
	Vendor string
	// Score is the mean of the vendor's software scores, 0 when the
	// vendor has no rated software.
	Score float64
	// SoftwareCount is how many of the vendor's executables carried a
	// score.
	SoftwareCount int
}

// AggregateVendor computes a vendor score from that vendor's software
// scores, ignoring unrated (zero-vote) entries.
func AggregateVendor(vendor string, scores []SoftwareScore) VendorScore {
	var sum float64
	var n int
	for _, s := range scores {
		if s.Votes == 0 {
			continue
		}
		sum += s.Score
		n++
	}
	out := VendorScore{Vendor: vendor, SoftwareCount: n}
	if n > 0 {
		out.Score = sum / float64(n)
	}
	return out
}

// AggregationPeriod is how often the server recomputes published scores:
// "Software ratings are calculated at fixed points in time (currently
// once in every 24-hour period)" (§3.2).
const AggregationPeriod = 24 * time.Hour

// AggregationSchedule tracks when the periodic job last ran.
type AggregationSchedule struct {
	// LastRun is the time of the previous run; zero means never.
	LastRun time.Time
}

// Due reports whether a run is due at the given instant.
func (s AggregationSchedule) Due(now time.Time) bool {
	return s.LastRun.IsZero() || now.Sub(s.LastRun) >= AggregationPeriod
}

// Ran records a run at the given instant and returns the new schedule.
func (s AggregationSchedule) Ran(now time.Time) AggregationSchedule {
	return AggregationSchedule{LastRun: now}
}
