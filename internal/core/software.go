// Package core implements the paper's primary contribution: the domain
// model of a collaborative software reputation system. It defines
// content-addressed software identity, the privacy-invasive-software
// classification (Tables 1 and 2 of the paper), user trust factors with
// the weekly growth cap of Section 3.2, ratings and comments, and the
// trust-weighted score aggregation that the server recomputes every
// 24 hours.
//
// The package is pure domain logic: it performs no storage or network
// I/O. Persistence lives in internal/repo and orchestration in
// internal/server.
package core

import (
	"crypto/sha1"
	"encoding/hex"
	"fmt"
	"strings"
)

// SoftwareID identifies an executable by the SHA-1 digest of its file
// content, as Section 3.3 of the paper prescribes: the identity is
// derived from the program's instructions, so behaviour cannot change
// without the identity changing too.
type SoftwareID [sha1.Size]byte

// ComputeSoftwareID returns the identity of an executable's content.
func ComputeSoftwareID(content []byte) SoftwareID {
	return sha1.Sum(content)
}

// String returns the lowercase hex form of the identity.
func (id SoftwareID) String() string {
	return hex.EncodeToString(id[:])
}

// IsZero reports whether the identity is the zero value, which no real
// file content produces in practice and which the system treats as
// "unset".
func (id SoftwareID) IsZero() bool {
	return id == SoftwareID{}
}

// ParseSoftwareID parses the hex form produced by String.
func ParseSoftwareID(s string) (SoftwareID, error) {
	var id SoftwareID
	raw, err := hex.DecodeString(strings.TrimSpace(s))
	if err != nil {
		return id, fmt.Errorf("core: parse software id: %w", err)
	}
	if len(raw) != sha1.Size {
		return id, fmt.Errorf("core: software id must be %d bytes, got %d", sha1.Size, len(raw))
	}
	copy(id[:], raw)
	return id, nil
}

// Behavior is a bitmask of the concrete software behaviours the paper's
// reputation system collects beyond a numeric score: "it displays pop-up
// ads, registers itself as a start-up program and does not provide a
// functioning uninstall option" (§4.3), plus the information-gathering
// behaviours of §1.
type Behavior uint32

// The behaviour flags users can report about software.
const (
	// BehaviorDisplaysAds marks software that shows pop-up or banner
	// advertisements.
	BehaviorDisplaysAds Behavior = 1 << iota
	// BehaviorTracksUsage marks software that records user behaviour
	// patterns or visited websites.
	BehaviorTracksUsage
	// BehaviorStartupRegistration marks software that registers itself
	// to run at system start-up.
	BehaviorStartupRegistration
	// BehaviorBrokenUninstall marks software with a missing or
	// incomplete removal routine.
	BehaviorBrokenUninstall
	// BehaviorBundledSoftware marks installers that bundle additional
	// third-party programs.
	BehaviorBundledSoftware
	// BehaviorSendsPersonalData marks software that transmits personal
	// information to central servers.
	BehaviorSendsPersonalData
	// BehaviorAltersSystemSettings marks software that changes system
	// configuration (home pages, search providers, security settings).
	BehaviorAltersSystemSettings
	// BehaviorKeylogging marks software that captures keystrokes.
	BehaviorKeylogging

	behaviorEnd
)

// NumBehaviors is the number of defined behaviour flags.
const NumBehaviors = 8

var behaviorNames = map[Behavior]string{
	BehaviorDisplaysAds:          "displays-ads",
	BehaviorTracksUsage:          "tracks-usage",
	BehaviorStartupRegistration:  "startup-registration",
	BehaviorBrokenUninstall:      "broken-uninstall",
	BehaviorBundledSoftware:      "bundled-software",
	BehaviorSendsPersonalData:    "sends-personal-data",
	BehaviorAltersSystemSettings: "alters-system-settings",
	BehaviorKeylogging:           "keylogging",
}

// Has reports whether b includes every flag in flags.
func (b Behavior) Has(flags Behavior) bool { return b&flags == flags }

// Count returns the number of flags set.
func (b Behavior) Count() int {
	n := 0
	for f := Behavior(1); f < behaviorEnd; f <<= 1 {
		if b&f != 0 {
			n++
		}
	}
	return n
}

// String renders the set flags as a comma-separated list, or "none".
func (b Behavior) String() string {
	var parts []string
	for f := Behavior(1); f < behaviorEnd; f <<= 1 {
		if b&f != 0 {
			parts = append(parts, behaviorNames[f])
		}
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, ",")
}

// ParseBehavior parses the comma-separated form produced by String.
func ParseBehavior(s string) (Behavior, error) {
	s = strings.TrimSpace(s)
	if s == "" || s == "none" {
		return 0, nil
	}
	var b Behavior
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		found := false
		for f, name := range behaviorNames {
			if name == part {
				b |= f
				found = true
				break
			}
		}
		if !found {
			return 0, fmt.Errorf("core: unknown behaviour %q", part)
		}
	}
	return b, nil
}

// SoftwareMeta is the per-executable record of Section 3.3: everything
// the database stores about a file besides ratings and comments.
type SoftwareMeta struct {
	// ID is the SHA-1 digest of the executable content.
	ID SoftwareID
	// FileName is the executable's file name.
	FileName string
	// FileSize is the executable's size in bytes.
	FileSize int64
	// Vendor is the company name embedded by the developer; empty when
	// the developer stripped it, which §3.3 treats as a PIS signal.
	Vendor string
	// Version is the file version string, when present.
	Version string
}

// VendorKnown reports whether the executable carries a company name.
// Software without one cannot benefit from vendor-level reputation and
// is treated as more suspicious (§3.3).
func (m SoftwareMeta) VendorKnown() bool { return strings.TrimSpace(m.Vendor) != "" }
