package core

import "fmt"

// This file implements the paper's classification of privacy-invasive
// software (Table 1) and the transformation a deployed reputation system
// induces on it (Table 2).
//
// Table 1 places software in a 3×3 matrix of user consent (low, medium,
// high) against negative user consequences (tolerable, moderate, severe).
// Software with low consent or severe consequences is malware; software
// with high consent and tolerable consequences is legitimate; the
// remaining grey zone — medium consent or moderate consequences — is
// spyware, or privacy-invasive software proper.
//
// Table 2 captures the paper's central argument (§4.1): once users reach
// *informed* decisions through the reputation system, medium consent
// disappears — software either discloses its behaviour and is consented
// to (high consent) or relies on deceit and drops to low consent,
// i.e. malware.

// Consent is the user's informed-consent level of Table 1.
type Consent int

// Consent levels, ordered from low to high.
const (
	ConsentLow Consent = iota
	ConsentMedium
	ConsentHigh
)

// String returns the consent level's name.
func (c Consent) String() string {
	switch c {
	case ConsentLow:
		return "low"
	case ConsentMedium:
		return "medium"
	case ConsentHigh:
		return "high"
	default:
		return fmt.Sprintf("Consent(%d)", int(c))
	}
}

// Consequence is the negative-user-consequence severity of Table 1.
type Consequence int

// Consequence severities, ordered from tolerable to severe.
const (
	ConsequenceTolerable Consequence = iota
	ConsequenceModerate
	ConsequenceSevere
)

// String returns the consequence severity's name.
func (c Consequence) String() string {
	switch c {
	case ConsequenceTolerable:
		return "tolerable"
	case ConsequenceModerate:
		return "moderate"
	case ConsequenceSevere:
		return "severe"
	default:
		return fmt.Sprintf("Consequence(%d)", int(c))
	}
}

// Category is one of the nine cells of Table 1.
type Category int

// The nine cells of Table 1, numbered as in the paper.
const (
	// CategoryLegitimate is cell 1: high consent, tolerable consequences.
	CategoryLegitimate Category = iota + 1
	// CategoryAdverse is cell 2: high consent, moderate consequences.
	CategoryAdverse
	// CategoryDoubleAgent is cell 3: high consent, severe consequences.
	CategoryDoubleAgent
	// CategorySemiTransparent is cell 4: medium consent, tolerable
	// consequences.
	CategorySemiTransparent
	// CategoryUnsolicited is cell 5: medium consent, moderate
	// consequences.
	CategoryUnsolicited
	// CategorySemiParasite is cell 6: medium consent, severe
	// consequences.
	CategorySemiParasite
	// CategoryCovert is cell 7: low consent, tolerable consequences.
	CategoryCovert
	// CategoryTrojan is cell 8: low consent, moderate consequences.
	CategoryTrojan
	// CategoryParasite is cell 9: low consent, severe consequences.
	CategoryParasite
)

var categoryNames = [...]string{
	CategoryLegitimate:      "legitimate software",
	CategoryAdverse:         "adverse software",
	CategoryDoubleAgent:     "double agents",
	CategorySemiTransparent: "semi-transparent software",
	CategoryUnsolicited:     "unsolicited software",
	CategorySemiParasite:    "semi-parasites",
	CategoryCovert:          "covert software",
	CategoryTrojan:          "trojans",
	CategoryParasite:        "parasites",
}

// String returns the paper's name for the cell.
func (c Category) String() string {
	if c >= CategoryLegitimate && c <= CategoryParasite {
		return categoryNames[c]
	}
	return fmt.Sprintf("Category(%d)", int(c))
}

// Classify maps a (consent, consequence) pair to its Table 1 cell.
func Classify(consent Consent, consequence Consequence) Category {
	row := map[Consent]int{ConsentHigh: 0, ConsentMedium: 1, ConsentLow: 2}[consent]
	col := map[Consequence]int{
		ConsequenceTolerable: 0,
		ConsequenceModerate:  1,
		ConsequenceSevere:    2,
	}[consequence]
	return Category(row*3 + col + 1)
}

// Consent returns the consent level of the cell.
func (c Category) Consent() Consent {
	switch {
	case c <= CategoryDoubleAgent:
		return ConsentHigh
	case c <= CategorySemiParasite:
		return ConsentMedium
	default:
		return ConsentLow
	}
}

// Consequence returns the consequence severity of the cell.
func (c Category) Consequence() Consequence {
	switch (int(c) - 1) % 3 {
	case 0:
		return ConsequenceTolerable
	case 1:
		return ConsequenceModerate
	default:
		return ConsequenceSevere
	}
}

// Verdict is the coarse three-way split the paper derives from Table 1.
type Verdict int

// Verdicts, from benign to malicious.
const (
	// VerdictLegitimate covers software with high consent and tolerable
	// consequences.
	VerdictLegitimate Verdict = iota
	// VerdictSpyware covers the grey zone: medium consent or moderate
	// consequences, excluding anything already malware.
	VerdictSpyware
	// VerdictMalware covers software with low consent or severe
	// consequences.
	VerdictMalware
)

// String returns the verdict's name.
func (v Verdict) String() string {
	switch v {
	case VerdictLegitimate:
		return "legitimate"
	case VerdictSpyware:
		return "spyware"
	case VerdictMalware:
		return "malware"
	default:
		return fmt.Sprintf("Verdict(%d)", int(v))
	}
}

// Verdict implements the paper's boundaries: "All software that has low
// user consent, or which impairs severe negative consequences should be
// regarded as malicious software. … any software that has high user
// consent, and which results in tolerable negative consequences should
// be regarded as legitimate software. By this follows that spyware
// constitutes the remaining group".
func (c Category) Verdict() Verdict {
	switch {
	case c.Consent() == ConsentLow || c.Consequence() == ConsequenceSevere:
		return VerdictMalware
	case c.Consent() == ConsentHigh && c.Consequence() == ConsequenceTolerable:
		return VerdictLegitimate
	default:
		return VerdictSpyware
	}
}

// TransformConsent models Table 2: with a reputation system providing
// informed decisions, medium consent is eliminated. Software whose
// behaviour the reputation system exposes truthfully gains high consent
// — the user knowingly accepts it — while software that relies on deceit
// (hidden vendor, per-copy re-hashing, behaviour contradicting its
// description) falls to low consent and is handled as malware.
// High and low consent are unchanged: the reputation system adds
// information, it does not remove any.
func TransformConsent(c Consent, deceitful bool) Consent {
	if c != ConsentMedium {
		return c
	}
	if deceitful {
		return ConsentLow
	}
	return ConsentHigh
}

// TransformCategory applies TransformConsent to a Table 1 cell,
// returning the Table 2 cell the software lands in.
func TransformCategory(c Category, deceitful bool) Category {
	return Classify(TransformConsent(c.Consent(), deceitful), c.Consequence())
}

// AllCategories lists the nine Table 1 cells in paper order, for
// iteration in reports and tests.
func AllCategories() []Category {
	out := make([]Category, 0, 9)
	for c := CategoryLegitimate; c <= CategoryParasite; c++ {
		out = append(out, c)
	}
	return out
}
