package core

import (
	"testing"
	"testing/quick"
)

func TestClassifyMatchesTable1(t *testing.T) {
	// The exact nine cells of Table 1, numbered as in the paper.
	cases := []struct {
		consent     Consent
		consequence Consequence
		want        Category
		wantName    string
	}{
		{ConsentHigh, ConsequenceTolerable, CategoryLegitimate, "legitimate software"},
		{ConsentHigh, ConsequenceModerate, CategoryAdverse, "adverse software"},
		{ConsentHigh, ConsequenceSevere, CategoryDoubleAgent, "double agents"},
		{ConsentMedium, ConsequenceTolerable, CategorySemiTransparent, "semi-transparent software"},
		{ConsentMedium, ConsequenceModerate, CategoryUnsolicited, "unsolicited software"},
		{ConsentMedium, ConsequenceSevere, CategorySemiParasite, "semi-parasites"},
		{ConsentLow, ConsequenceTolerable, CategoryCovert, "covert software"},
		{ConsentLow, ConsequenceModerate, CategoryTrojan, "trojans"},
		{ConsentLow, ConsequenceSevere, CategoryParasite, "parasites"},
	}
	for _, c := range cases {
		got := Classify(c.consent, c.consequence)
		if got != c.want {
			t.Errorf("Classify(%v, %v) = %v, want %v", c.consent, c.consequence, got, c.want)
		}
		if got.String() != c.wantName {
			t.Errorf("%v.String() = %q, want %q", got, got.String(), c.wantName)
		}
		if int(got) != int(c.want) {
			t.Errorf("cell number = %d, want %d", int(got), int(c.want))
		}
	}
}

func TestCategoryRoundTrip(t *testing.T) {
	// Classify(cat.Consent(), cat.Consequence()) == cat for all nine cells.
	for _, cat := range AllCategories() {
		if got := Classify(cat.Consent(), cat.Consequence()); got != cat {
			t.Errorf("round trip of %v gives %v", cat, got)
		}
	}
}

func TestVerdictBoundaries(t *testing.T) {
	// Paper: low consent OR severe consequences => malware;
	// high consent AND tolerable consequences => legitimate;
	// everything else => spyware.
	wants := map[Category]Verdict{
		CategoryLegitimate:      VerdictLegitimate,
		CategoryAdverse:         VerdictSpyware,
		CategoryDoubleAgent:     VerdictMalware,
		CategorySemiTransparent: VerdictSpyware,
		CategoryUnsolicited:     VerdictSpyware,
		CategorySemiParasite:    VerdictMalware,
		CategoryCovert:          VerdictMalware,
		CategoryTrojan:          VerdictMalware,
		CategoryParasite:        VerdictMalware,
	}
	for cat, want := range wants {
		if got := cat.Verdict(); got != want {
			t.Errorf("%v.Verdict() = %v, want %v", cat, got, want)
		}
	}
}

func TestVerdictTotality(t *testing.T) {
	// Every (consent, consequence) pair lands in exactly one verdict,
	// and the split is exhaustive: 1 legitimate, 3 spyware, 5 malware.
	counts := map[Verdict]int{}
	for _, cat := range AllCategories() {
		counts[cat.Verdict()]++
	}
	if counts[VerdictLegitimate] != 1 || counts[VerdictSpyware] != 3 || counts[VerdictMalware] != 5 {
		t.Fatalf("verdict split = %v, want 1/3/5", counts)
	}
}

func TestTransformConsentEliminatesMedium(t *testing.T) {
	// Table 2 has no medium-consent row.
	for _, deceitful := range []bool{false, true} {
		got := TransformConsent(ConsentMedium, deceitful)
		if got == ConsentMedium {
			t.Fatalf("medium consent survives transform (deceitful=%v)", deceitful)
		}
		if deceitful && got != ConsentLow {
			t.Errorf("deceitful medium => %v, want low", got)
		}
		if !deceitful && got != ConsentHigh {
			t.Errorf("honest medium => %v, want high", got)
		}
	}
	// High and low consent are invariant.
	for _, c := range []Consent{ConsentLow, ConsentHigh} {
		for _, d := range []bool{false, true} {
			if got := TransformConsent(c, d); got != c {
				t.Errorf("TransformConsent(%v, %v) = %v, want unchanged", c, d, got)
			}
		}
	}
}

func TestTransformCategoryLandsInTable2(t *testing.T) {
	// After the transform, every cell is in one of the six Table 2 cells
	// (no medium consent), and the consequence axis is preserved.
	for _, cat := range AllCategories() {
		for _, deceitful := range []bool{false, true} {
			got := TransformCategory(cat, deceitful)
			if got.Consent() == ConsentMedium {
				t.Errorf("transform of %v yields medium consent", cat)
			}
			if got.Consequence() != cat.Consequence() {
				t.Errorf("transform of %v changed consequence to %v", cat, got.Consequence())
			}
		}
	}
}

func TestTransformSpywareBecomesLegitimateOrMalware(t *testing.T) {
	// The paper's claim: "all software with medium user consent, i.e.
	// spyware, is transformed into either legitimate software or malware".
	for _, cat := range AllCategories() {
		if cat.Consent() != ConsentMedium {
			continue
		}
		honest := TransformCategory(cat, false)
		deceit := TransformCategory(cat, true)
		// Deceitful grey-zone software drops to low consent: malware.
		if deceit.Verdict() != VerdictMalware {
			t.Errorf("deceitful %v => %v, want malware", cat, deceit.Verdict())
		}
		// Honest grey-zone software gains full, informed consent. On the
		// tolerable-consequence column that is exactly "legitimate
		// software"; Table 2 keeps the consequence axis, so moderate and
		// severe consequences land in the consented cells "adverse
		// software" and "double agents".
		if honest.Consent() != ConsentHigh {
			t.Errorf("honest %v => consent %v, want high", cat, honest.Consent())
		}
		if cat.Consequence() == ConsequenceTolerable && honest != CategoryLegitimate {
			t.Errorf("honest %v => %v, want legitimate software", cat, honest)
		}
	}
}

func TestConsentConsequenceStrings(t *testing.T) {
	if ConsentLow.String() != "low" || ConsentMedium.String() != "medium" || ConsentHigh.String() != "high" {
		t.Fatal("consent names wrong")
	}
	if ConsequenceTolerable.String() != "tolerable" || ConsequenceModerate.String() != "moderate" || ConsequenceSevere.String() != "severe" {
		t.Fatal("consequence names wrong")
	}
	if Consent(99).String() == "" || Consequence(99).String() == "" || Category(99).String() == "" || Verdict(99).String() == "" {
		t.Fatal("out-of-range values must still render")
	}
}

func TestClassifyQuickTotal(t *testing.T) {
	// Property: Classify is total over the valid domain and its output
	// always round-trips through Consent/Consequence.
	f := func(ci, qi uint8) bool {
		consent := Consent(ci % 3)
		consequence := Consequence(qi % 3)
		cat := Classify(consent, consequence)
		return cat >= CategoryLegitimate && cat <= CategoryParasite &&
			cat.Consent() == consent && cat.Consequence() == consequence
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
