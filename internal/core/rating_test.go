package core

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
	"time"

	"softreputation/internal/vclock"
)

func TestValidateScore(t *testing.T) {
	for s := ScoreMin; s <= ScoreMax; s++ {
		if err := ValidateScore(s); err != nil {
			t.Errorf("ValidateScore(%d) = %v", s, err)
		}
	}
	for _, s := range []int{0, -1, 11, 100} {
		if err := ValidateScore(s); !errors.Is(err, ErrScoreRange) {
			t.Errorf("ValidateScore(%d) = %v, want ErrScoreRange", s, err)
		}
	}
}

func TestAggregateUnweightedMean(t *testing.T) {
	p := AggregationPolicy{Weighted: false}
	votes := []WeightedVote{{Score: 2, Trust: 100}, {Score: 4, Trust: 1}, {Score: 6, Trust: 1}}
	if got := p.Aggregate(votes); got != 4 {
		t.Fatalf("unweighted mean = %v, want 4", got)
	}
}

func TestAggregateWeightedMean(t *testing.T) {
	p := DefaultAggregationPolicy()
	// One expert (trust 90) voting 9 against nine novices voting 1:
	// weighted mean = (90*9 + 9*1*1)/(90+9) = (810+9)/99 ≈ 8.27.
	votes := []WeightedVote{{Score: 9, Trust: 90}}
	for i := 0; i < 9; i++ {
		votes = append(votes, WeightedVote{Score: 1, Trust: 1})
	}
	got := p.Aggregate(votes)
	want := (90.0*9 + 9.0) / 99.0
	if math.Abs(got-want) > 1e-9 {
		t.Fatalf("weighted mean = %v, want %v", got, want)
	}
	// The unweighted mean would be 1.8; trust weighting moves the score
	// toward the expert, the §2.1 "tipping the balance" effect.
	unweighted := AggregationPolicy{}.Aggregate(votes)
	if unweighted >= got {
		t.Fatalf("weighting did not raise the expert's influence: %v vs %v", unweighted, got)
	}
}

func TestAggregateEmpty(t *testing.T) {
	if got := DefaultAggregationPolicy().Aggregate(nil); got != 0 {
		t.Fatalf("empty aggregate = %v, want 0", got)
	}
}

func TestAggregateTrustFloor(t *testing.T) {
	// Zero or negative trust weights are clamped to TrustMin so no vote
	// silently disappears.
	p := DefaultAggregationPolicy()
	votes := []WeightedVote{{Score: 10, Trust: 0}, {Score: 2, Trust: 1}}
	if got := p.Aggregate(votes); got != 6 {
		t.Fatalf("aggregate with zero trust = %v, want 6", got)
	}
}

func TestAggregatePrior(t *testing.T) {
	p := AggregationPolicy{Weighted: false, PriorVotes: 10, PriorScore: 5.5}
	// No real votes: the prior alone defines the score.
	if got := p.Aggregate(nil); got != 5.5 {
		t.Fatalf("prior-only aggregate = %v", got)
	}
	// A single hostile vote barely moves a smoothed score.
	smoothed := p.Aggregate([]WeightedVote{{Score: 1, Trust: 1}})
	raw := AggregationPolicy{}.Aggregate([]WeightedVote{{Score: 1, Trust: 1}})
	if !(raw == 1 && smoothed > 5) {
		t.Fatalf("smoothing failed: raw=%v smoothed=%v", raw, smoothed)
	}
}

func TestAggregateRangeInvariant(t *testing.T) {
	// Property: with any votes in range, the aggregate stays in range.
	f := func(scores []uint8, trusts []uint8) bool {
		var votes []WeightedVote
		for i, s := range scores {
			trust := 1.0
			if i < len(trusts) {
				trust = float64(trusts[i]%100) + 1
			}
			votes = append(votes, WeightedVote{Score: int(s%10) + 1, Trust: trust})
		}
		for _, p := range []AggregationPolicy{{Weighted: true}, {Weighted: false}} {
			got := p.Aggregate(votes)
			if len(votes) == 0 {
				if got != 0 {
					return false
				}
				continue
			}
			if got < ScoreMin || got > ScoreMax {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestBehaviorConsensus(t *testing.T) {
	p := AggregationPolicy{Weighted: false}
	votes := make([]WeightedVote, 10)
	behaviors := make([]Behavior, 10)
	for i := range votes {
		votes[i] = WeightedVote{Score: 5, Trust: 1}
	}
	// 4 of 10 report ads (40% >= 30% threshold), 1 of 10 reports
	// keylogging (10% < threshold).
	for i := 0; i < 4; i++ {
		behaviors[i] |= BehaviorDisplaysAds
	}
	behaviors[9] |= BehaviorKeylogging

	got := p.BehaviorConsensus(votes, behaviors)
	if !got.Has(BehaviorDisplaysAds) {
		t.Fatal("40% reporting ads should reach consensus")
	}
	if got.Has(BehaviorKeylogging) {
		t.Fatal("10% reporting keylogging should not reach consensus")
	}
}

func TestBehaviorConsensusTrustWeighted(t *testing.T) {
	p := DefaultAggregationPolicy()
	// One trusted expert reporting tracking outweighs three novices who
	// report nothing: 50/(50+3) = 94% of weight.
	votes := []WeightedVote{{Score: 3, Trust: 50}, {Score: 8, Trust: 1}, {Score: 8, Trust: 1}, {Score: 8, Trust: 1}}
	behaviors := []Behavior{BehaviorTracksUsage, 0, 0, 0}
	got := p.BehaviorConsensus(votes, behaviors)
	if !got.Has(BehaviorTracksUsage) {
		t.Fatal("trusted behaviour report should reach consensus")
	}
	// Unweighted, the same report is 25% < 30% threshold.
	if (AggregationPolicy{}).BehaviorConsensus(votes, behaviors).Has(BehaviorTracksUsage) {
		t.Fatal("unweighted consensus should not trigger at 25%")
	}
}

func TestAggregateVendor(t *testing.T) {
	scores := []SoftwareScore{
		{Score: 8, Votes: 10},
		{Score: 4, Votes: 3},
		{Score: 0, Votes: 0}, // unrated: ignored
	}
	got := AggregateVendor("Acme", scores)
	if got.Score != 6 || got.SoftwareCount != 2 || got.Vendor != "Acme" {
		t.Fatalf("vendor score = %+v", got)
	}
	empty := AggregateVendor("Ghost", nil)
	if empty.Score != 0 || empty.SoftwareCount != 0 {
		t.Fatalf("empty vendor score = %+v", empty)
	}
}

func TestAggregationSchedule(t *testing.T) {
	var s AggregationSchedule
	now := vclock.Epoch
	if !s.Due(now) {
		t.Fatal("never-run schedule must be due")
	}
	s = s.Ran(now)
	if s.Due(now.Add(23 * time.Hour)) {
		t.Fatal("due again after 23h")
	}
	if !s.Due(now.Add(24 * time.Hour)) {
		t.Fatal("not due after 24h")
	}
}

func TestSoftwareIDRoundTrip(t *testing.T) {
	id := ComputeSoftwareID([]byte("some executable content"))
	if id.IsZero() {
		t.Fatal("real content must not hash to zero")
	}
	parsed, err := ParseSoftwareID(id.String())
	if err != nil || parsed != id {
		t.Fatalf("round trip failed: %v, %v", parsed, err)
	}
	// Identity is content-derived: one flipped byte changes it (§3.3).
	id2 := ComputeSoftwareID([]byte("some executable contenT"))
	if id == id2 {
		t.Fatal("different content must produce different identities")
	}
	if _, err := ParseSoftwareID("zz"); err == nil {
		t.Fatal("ParseSoftwareID accepted junk")
	}
	if _, err := ParseSoftwareID("abcd"); err == nil {
		t.Fatal("ParseSoftwareID accepted short hex")
	}
}

func TestBehaviorStringRoundTrip(t *testing.T) {
	b := BehaviorDisplaysAds | BehaviorBrokenUninstall | BehaviorKeylogging
	parsed, err := ParseBehavior(b.String())
	if err != nil || parsed != b {
		t.Fatalf("round trip = %v, %v", parsed, err)
	}
	if Behavior(0).String() != "none" {
		t.Fatal("zero behaviour must render as none")
	}
	if p, err := ParseBehavior("none"); err != nil || p != 0 {
		t.Fatal("parse of none failed")
	}
	if p, err := ParseBehavior(""); err != nil || p != 0 {
		t.Fatal("parse of empty failed")
	}
	if _, err := ParseBehavior("exfiltrates-soul"); err == nil {
		t.Fatal("unknown behaviour accepted")
	}
	if b.Count() != 3 {
		t.Fatalf("Count = %d, want 3", b.Count())
	}
	if !b.Has(BehaviorDisplaysAds) || b.Has(BehaviorTracksUsage) {
		t.Fatal("Has misbehaves")
	}
}

func TestSoftwareMetaVendorKnown(t *testing.T) {
	if (SoftwareMeta{Vendor: "Acme"}).VendorKnown() == false {
		t.Fatal("named vendor must be known")
	}
	if (SoftwareMeta{Vendor: "  "}).VendorKnown() {
		t.Fatal("blank vendor must be unknown")
	}
}

func TestBehaviorQuickRoundTrip(t *testing.T) {
	f := func(mask uint8) bool {
		b := Behavior(mask) // any subset of the 8 defined flags
		parsed, err := ParseBehavior(b.String())
		return err == nil && parsed == b
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 256}); err != nil {
		t.Fatal(err)
	}
}
