package core

import (
	"testing"
	"testing/quick"
	"time"

	"softreputation/internal/vclock"
)

func TestNewTrustStartsAtMinimum(t *testing.T) {
	tr := NewTrust(vclock.Epoch)
	if tr.Value != TrustMin {
		t.Fatalf("new trust = %v, want %v", tr.Value, TrustMin)
	}
}

func TestTrustWeeklyGrowthCap(t *testing.T) {
	// Within one week, no amount of positive remarks grows trust by more
	// than 5 units.
	tr := NewTrust(vclock.Epoch)
	now := vclock.Epoch.Add(time.Hour)
	for i := 0; i < 100; i++ {
		tr = tr.ApplyRemark(true, now)
	}
	want := TrustMin + TrustWeeklyGrowthCap
	if tr.Value > want {
		t.Fatalf("trust after burst = %v, want <= %v", tr.Value, want)
	}
	// The paper's schedule: max 5 in week one. Ceiling (5) beats
	// min+cap (6) here.
	if tr.Value != 5 {
		t.Fatalf("trust after week-1 burst = %v, want 5", tr.Value)
	}
}

func TestTrustScheduleMatchesPaper(t *testing.T) {
	// "you can reach a maximum trust factor of 5 the first week you are
	// a member, 10 the second week, and so on".
	tr := NewTrust(vclock.Epoch)
	for week := 0; week < 25; week++ {
		now := vclock.Epoch.Add(time.Duration(week)*vclock.Week + time.Hour)
		for i := 0; i < 50; i++ {
			tr = tr.ApplyRemark(true, now)
		}
		wantMax := TrustWeeklyGrowthCap * float64(week+1)
		if wantMax > TrustMax {
			wantMax = TrustMax
		}
		if tr.Value != wantMax {
			t.Fatalf("week %d: trust = %v, want %v", week, tr.Value, wantMax)
		}
	}
}

func TestTrustCapAt100(t *testing.T) {
	tr := NewTrust(vclock.Epoch)
	// After 30 weeks of maximal growth the factor stops at 100, not 150.
	for week := 0; week < 30; week++ {
		now := vclock.Epoch.Add(time.Duration(week)*vclock.Week + time.Hour)
		for i := 0; i < 20; i++ {
			tr = tr.ApplyRemark(true, now)
		}
	}
	if tr.Value != TrustMax {
		t.Fatalf("trust after 30 weeks = %v, want %v", tr.Value, TrustMax)
	}
	// weeks to cap: ceil((100-... the schedule reaches 100 at week 19
	// (ceiling 5*(19+1)=100), i.e. the 20th week of membership.
}

func TestTrustFloorAt1(t *testing.T) {
	tr := NewTrust(vclock.Epoch)
	now := vclock.Epoch.Add(time.Hour)
	for i := 0; i < 50; i++ {
		tr = tr.ApplyRemark(false, now)
	}
	if tr.Value != TrustMin {
		t.Fatalf("trust after negative burst = %v, want %v", tr.Value, TrustMin)
	}
}

func TestTrustNegativeNotRateLimited(t *testing.T) {
	// Build trust over several weeks, then lose it all in one day.
	tr := NewTrust(vclock.Epoch)
	for week := 0; week < 4; week++ {
		now := vclock.Epoch.Add(time.Duration(week)*vclock.Week + time.Hour)
		for i := 0; i < 10; i++ {
			tr = tr.ApplyRemark(true, now)
		}
	}
	if tr.Value != 20 {
		t.Fatalf("trust after 4 weeks = %v, want 20", tr.Value)
	}
	now := vclock.Epoch.Add(4*vclock.Week + time.Hour)
	for i := 0; i < 15; i++ {
		tr = tr.ApplyRemark(false, now)
	}
	if tr.Value != TrustMin {
		t.Fatalf("trust after slashing = %v, want %v", tr.Value, TrustMin)
	}
}

func TestTrustGrowthBudgetNotReplenishedByLoss(t *testing.T) {
	// Gaining 5, losing 4, then trying to gain again within the same
	// week must not exceed the weekly growth of 5.
	tr := NewTrust(vclock.Epoch)
	now := vclock.Epoch.Add(time.Hour)
	for i := 0; i < 5; i++ {
		tr = tr.ApplyRemark(true, now) // 1 -> 5 (ceiling), grown 4
	}
	tr = tr.Apply(-3, now) // down to 2
	tr = tr.Apply(+5, now) // budget left is 5-4=1 => only +1
	if tr.Value != 3 {
		t.Fatalf("trust = %v, want 3 (budget exhausted)", tr.Value)
	}
}

func TestTrustInvariant(t *testing.T) {
	// Property: under arbitrary remark sequences at arbitrary times the
	// factor stays within [1, 100] and within the membership schedule.
	f := func(seed []bool, hourOffsets []uint16) bool {
		tr := NewTrust(vclock.Epoch)
		now := vclock.Epoch
		for i, pos := range seed {
			if i < len(hourOffsets) {
				now = now.Add(time.Duration(hourOffsets[i]%200) * time.Hour)
			}
			tr = tr.ApplyRemark(pos, now)
			if tr.Value < TrustMin || tr.Value > TrustMax {
				return false
			}
			weeks := vclock.WeekIndex(vclock.Epoch, now)
			ceiling := TrustWeeklyGrowthCap * float64(weeks+1)
			if ceiling > TrustMax {
				ceiling = TrustMax
			}
			if tr.Value > ceiling {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestWeekIndex(t *testing.T) {
	if vclock.WeekIndex(vclock.Epoch, vclock.Epoch) != 0 {
		t.Fatal("week 0 at join time")
	}
	if vclock.WeekIndex(vclock.Epoch, vclock.Epoch.Add(6*24*time.Hour)) != 0 {
		t.Fatal("day 6 is still week 0")
	}
	if vclock.WeekIndex(vclock.Epoch, vclock.Epoch.Add(7*24*time.Hour)) != 1 {
		t.Fatal("day 7 is week 1")
	}
	if vclock.WeekIndex(vclock.Epoch, vclock.Epoch.Add(-time.Hour)) != 0 {
		t.Fatal("times before start clamp to week 0")
	}
}
