package core

import (
	"time"

	"softreputation/internal/vclock"
)

// Trust-factor mechanics of Section 3.2.
//
// Every user carries a trust factor that weights their votes during
// aggregation. New users start at the minimum of 1. Trust grows when
// other users leave positive remarks on their comments and shrinks on
// negative remarks, but growth is rate-limited: "the maximum growth per
// week [is] 5 units. Hence, you can reach a maximum trust factor of 5
// the first week you are a member, 10 the second week, and so on" — so
// influence must be earned over a long period and cannot be rushed by a
// burst of colluding praise. The factor is clamped to [1, 100].

// Trust-factor bounds and rates from §3.2 of the paper.
const (
	// TrustMin is the floor and the value assigned to new users.
	TrustMin = 1.0
	// TrustMax is the ceiling of the trust factor.
	TrustMax = 100.0
	// TrustWeeklyGrowthCap is the maximum trust a user can gain per week
	// of membership.
	TrustWeeklyGrowthCap = 5.0
)

// Default remark deltas: how much one positive or negative remark on a
// user's comment moves their trust factor. The paper fixes the growth
// cap but not the per-remark delta; these defaults make a consistently
// helpful user track the cap.
const (
	RemarkPositiveDelta = 1.0
	RemarkNegativeDelta = -2.0
)

// Trust is a user's trust factor together with the bookkeeping needed to
// enforce the weekly growth schedule. The zero value is not valid; use
// NewTrust.
type Trust struct {
	// Value is the current trust factor in [TrustMin, TrustMax].
	Value float64
	// JoinedAt anchors the weekly growth schedule.
	JoinedAt time.Time
	// GrownInWeek is how much the factor has grown during WeekIdx.
	GrownInWeek float64
	// WeekIdx is the membership week GrownInWeek refers to.
	WeekIdx int
}

// NewTrust returns the trust state of a user who joined at the given
// instant: the minimum factor and an empty growth budget.
func NewTrust(joinedAt time.Time) Trust {
	return Trust{Value: TrustMin, JoinedAt: joinedAt}
}

// ceilingAt returns the largest factor reachable by now under the weekly
// schedule: 5 in the first membership week, 10 in the second, and so on,
// never above TrustMax. The ceiling also never drops below TrustMin.
func (t Trust) ceilingAt(now time.Time) float64 {
	weeks := vclock.WeekIndex(t.JoinedAt, now)
	ceiling := TrustWeeklyGrowthCap * float64(weeks+1)
	if ceiling > TrustMax {
		ceiling = TrustMax
	}
	if ceiling < TrustMin {
		ceiling = TrustMin
	}
	return ceiling
}

// Apply adjusts the factor by delta at the given instant, enforcing the
// weekly growth cap, the membership-schedule ceiling and the [1, 100]
// clamp. It returns the updated state; negative deltas are applied
// immediately (loss of trust is never rate-limited) and replenish no
// growth budget.
func (t Trust) Apply(delta float64, now time.Time) Trust {
	week := vclock.WeekIndex(t.JoinedAt, now)
	if week != t.WeekIdx {
		t.WeekIdx = week
		t.GrownInWeek = 0
	}

	if delta < 0 {
		t.Value += delta
		if t.Value < TrustMin {
			t.Value = TrustMin
		}
		return t
	}

	budget := TrustWeeklyGrowthCap - t.GrownInWeek
	if budget <= 0 {
		return t
	}
	if delta > budget {
		delta = budget
	}
	ceiling := t.ceilingAt(now)
	if t.Value+delta > ceiling {
		delta = ceiling - t.Value
	}
	if delta <= 0 {
		return t
	}
	t.Value += delta
	t.GrownInWeek += delta
	return t
}

// ApplyRemark adjusts trust for one remark left on the user's comment:
// positive remarks reward good, clear and useful comments; negative
// remarks punish coloured, nonsense or meaningless ones (§3.2).
func (t Trust) ApplyRemark(positive bool, now time.Time) Trust {
	if positive {
		return t.Apply(RemarkPositiveDelta, now)
	}
	return t.Apply(RemarkNegativeDelta, now)
}
