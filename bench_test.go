// Benchmarks regenerating every table and experiment of DESIGN.md §3.
// Each benchmark wraps the corresponding simulation runner; custom
// metrics expose the experiment's headline numbers alongside the usual
// ns/op. `go test -bench=. -benchmem` prints the full set; cmd/simulate
// renders the same experiments as human-readable tables.
package softreputation

import (
	"fmt"
	"testing"

	"softreputation/internal/core"
	"softreputation/internal/repo"
	"softreputation/internal/simulation"
	"softreputation/internal/storedb"
	"softreputation/internal/vclock"
)

// BenchmarkTable1Classification regenerates Table 1: the 3×3 PIS
// classification of a 2,400-program catalog.
func BenchmarkTable1Classification(b *testing.B) {
	var res simulation.Table1Result
	for i := 0; i < b.N; i++ {
		res = simulation.RunTable1(simulation.DefaultCatalogConfig(1))
	}
	b.ReportMetric(float64(res.VerdictCounts[core.VerdictSpyware]), "grey-zone-programs")
	b.ReportMetric(float64(res.Total), "programs")
}

// BenchmarkTable2Transform regenerates Table 2: the reputation-induced
// elimination of the medium-consent row.
func BenchmarkTable2Transform(b *testing.B) {
	var res simulation.Table2Result
	for i := 0; i < b.N; i++ {
		res = simulation.RunTable2(simulation.DefaultCatalogConfig(1))
	}
	b.ReportMetric(float64(res.ToHigh), "grey-to-legitimate")
	b.ReportMetric(float64(res.ToLow), "grey-to-malware")
}

// BenchmarkE1DatabaseScale reproduces the "well over 2000 rated
// software programs" deployment claim and measures lookups at that
// scale.
func BenchmarkE1DatabaseScale(b *testing.B) {
	var res simulation.ScaleResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunScale(simulation.ScaleConfig{
			Seed: 1, Programs: 2500, Users: 300, VotesPerAgent: 20, Lookups: 500,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RatedPrograms), "rated-programs")
	b.ReportMetric(float64(res.LookupP50.Nanoseconds()), "lookup-p50-ns")
}

// BenchmarkE2TrustGrowth reproduces the trust-factor growth schedule.
func BenchmarkE2TrustGrowth(b *testing.B) {
	var res simulation.TrustGrowthResult
	for i := 0; i < b.N; i++ {
		res = simulation.RunTrustGrowth(30)
	}
	b.ReportMetric(float64(res.WeeksToCap+1), "weeks-to-cap")
}

// BenchmarkE3PromptThrottle reproduces the 50-execution / 2-per-week
// rating-prompt policy.
func BenchmarkE3PromptThrottle(b *testing.B) {
	h, err := simulation.NewHarness(simulation.WorldConfig{
		Seed:       3,
		Catalog:    simulation.CatalogConfig{Seed: 3, Total: 10, LegitFrac: 1, Vendors: 2},
		Population: simulation.PopulationConfig{Seed: 4, Total: 1},
	})
	if err != nil {
		b.Fatal(err)
	}
	defer h.Close()
	var res simulation.PromptThrottleResult
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err = simulation.RunPromptThrottle(simulation.PromptThrottleConfig{
			Seed: 3, Programs: 20, Weeks: 4,
			Threshold: 50, PerWeek: 2, RunsPerDay: 4,
		}, h.World.Agents[0].Session, h.API, h.World.Clock)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.MaxPromptsInWeek), "max-prompts-per-week")
	b.ReportMetric(res.InterruptionRate*1e4, "prompts-per-10k-execs")
}

// BenchmarkE4AggregationJob reproduces the 24-hour aggregation
// schedule.
func BenchmarkE4AggregationJob(b *testing.B) {
	var res simulation.AggregationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunAggregationSchedule(4, 3)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.RunsHappened), "aggregation-runs-3d")
	b.ReportMetric(float64(res.MaxStaleness.Hours()), "max-staleness-h")
}

// BenchmarkE5ColdStart reproduces the cold-start / bootstrapping
// ablation.
func BenchmarkE5ColdStart(b *testing.B) {
	var res simulation.ColdStartResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunColdStart(5, 200, []int{10, 50})
		if err != nil {
			b.Fatal(err)
		}
	}
	var plainZero, bootZero float64
	for _, row := range res.Rows {
		if row.Users == 10 {
			if row.Bootstrap {
				bootZero = row.ZeroVoteFrac
			} else {
				plainZero = row.ZeroVoteFrac
			}
		}
	}
	b.ReportMetric(plainZero*100, "zero-vote-pct-plain")
	b.ReportMetric(bootZero*100, "zero-vote-pct-boot")
}

// BenchmarkE6SybilDefences reproduces the vote-flooding defence sweep.
func BenchmarkE6SybilDefences(b *testing.B) {
	var res simulation.SybilResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunSybil(simulation.SybilConfig{
			Seed: 6, HonestUsers: 60, HonestVotes: 30, SybilCount: 80, ExpertFrac: 0.2,
			DefenceSweep: []simulation.SybilDefence{
				{Name: "none"},
				{Name: "shared-mailbox", SharedMailbox: true},
				{Name: "trust", TrustWeeks: 6},
			},
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Rows[0].ScoreShift, "shift-undefended")
	b.ReportMetric(res.Rows[1].ScoreShift, "shift-email-hash")
	b.ReportMetric(res.Rows[2].ScoreShift, "shift-trust")
}

// BenchmarkE7TrustWeighting reproduces the weighted-vs-unweighted
// aggregation ablation under slander.
func BenchmarkE7TrustWeighting(b *testing.B) {
	var res simulation.TrustWeightingResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunTrustWeighting(simulation.TrustWeightingConfig{
			Seed: 7, Programs: 60, Users: 60,
			ExpertFrac: 0.15, SlandererFrac: 0.25, TrustWeeks: 6, VotesPerAgent: 20,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.WeightedRMSE, "rmse-weighted")
	b.ReportMetric(res.UnweightedRMSE, "rmse-unweighted")
}

// BenchmarkE8Polymorphic reproduces the per-download re-hashing evasion
// and the vendor-keying countermeasure.
func BenchmarkE8Polymorphic(b *testing.B) {
	var res simulation.PolymorphicResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunPolymorphic(simulation.PolymorphicConfig{
			Seed: 8, Downloads: 200, Raters: 60,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.FileLevelCoverage*100, "file-coverage-pct")
	b.ReportMetric(res.VendorScore, "vendor-score")
}

// BenchmarkE9Countermeasures reproduces the §4.3 comparison with
// anti-virus and anti-spyware scanners.
func BenchmarkE9Countermeasures(b *testing.B) {
	var res simulation.CountermeasureResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunCountermeasures(simulation.CountermeasureConfig{
			Seed: 9, Programs: 100, Users: 60, Days: 45, ExecutionsPerDay: 40,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.Setup {
		case "none":
			b.ReportMetric(row.Harm, "harm-none")
		case "anti-virus":
			b.ReportMetric(row.Harm, "harm-av")
		case "reputation":
			b.ReportMetric(row.Harm, "harm-reputation")
		case "reputation+av":
			b.ReportMetric(row.Harm, "harm-combined")
		}
	}
}

// BenchmarkE10BreachPrivacy reproduces the database-breach experiment.
func BenchmarkE10BreachPrivacy(b *testing.B) {
	var res simulation.BreachResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunBreach(10, 30, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.EmailsCrackedPlain), "emails-cracked-plain")
	b.ReportMetric(float64(res.EmailsCrackedPepper), "emails-cracked-peppered")
}

// BenchmarkE11Stability reproduces the §4.2 stability failure and the
// signature-whitelist fix.
func BenchmarkE11Stability(b *testing.B) {
	var res simulation.StabilityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunStability(11, 20)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.NaiveCrashes), "crashes-naive")
	b.ReportMetric(float64(res.WhitelistCrashes), "crashes-whitelisted")
}

// BenchmarkE12PolicyManager reproduces the corporate-policy enforcement
// accuracy.
func BenchmarkE12PolicyManager(b *testing.B) {
	var res simulation.PolicyManagerResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunPolicyManager(12, 120, 80)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Accuracy*100, "policy-accuracy-pct")
}

// BenchmarkE13AnonymityOverhead reproduces the direct-vs-onion lookup
// comparison.
func BenchmarkE13AnonymityOverhead(b *testing.B) {
	var res simulation.AnonymityResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunAnonymity(13, 200)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.DirectPerOp.Nanoseconds()), "direct-ns")
	b.ReportMetric(float64(res.OnionPerOp.Nanoseconds()), "onion-ns")
}

// BenchmarkE15AnalysisEvidence reproduces the §5 runtime-analysis
// extension: sandbox evidence vs community votes in the budding phase.
func BenchmarkE15AnalysisEvidence(b *testing.B) {
	var res simulation.AnalysisResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunAnalysisEvidence(simulation.AnalysisConfig{
			Seed: 15, Programs: 150, Users: 25, VotesPerAgent: 6, SandboxRuns: 3,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.Source {
		case "community":
			b.ReportMetric(row.PISFlagged*100, "pis-flagged-pct-community")
		case "combined":
			b.ReportMetric(row.PISFlagged*100, "pis-flagged-pct-combined")
		}
	}
}

// BenchmarkE16InstallStudy reproduces the §5 install-decision study:
// PIS installs avoided per information level.
func BenchmarkE16InstallStudy(b *testing.B) {
	var res simulation.InstallStudyResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunInstallStudy(simulation.InstallStudyConfig{
			Seed: 16, Programs: 150, Users: 50, VotesPerAgent: 30, DecisionsPerUser: 15,
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		switch row.Level {
		case "score-only":
			b.ReportMetric(row.PISAvoided*100, "pis-avoided-pct-score")
		case "full report":
			b.ReportMetric(row.PISAvoided*100, "pis-avoided-pct-full")
		}
	}
}

// BenchmarkE17Chaos reproduces the outage-resilience grid: decision
// latency and prompt rate for {no-resilience, retry-only,
// retry+breaker+cache} clients across outage profiles, headline
// numbers from the 100% partition.
func BenchmarkE17Chaos(b *testing.B) {
	var res simulation.ChaosResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunChaos(simulation.QuickChaosConfig(17))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, row := range res.Rows {
		if row.Profile != "partition (100% outage)" {
			continue
		}
		switch row.Mechanism {
		case "none":
			b.ReportMetric(row.PromptRate*100, "prompt-pct-none")
			b.ReportMetric(float64(row.AvgLatency.Milliseconds()), "latency-ms-none")
		case "retry":
			b.ReportMetric(float64(row.AvgLatency.Milliseconds()), "latency-ms-retry")
		case "retry+breaker+cache":
			b.ReportMetric(row.PromptRate*100, "prompt-pct-full")
			b.ReportMetric(float64(row.AvgLatency.Milliseconds()), "latency-ms-full")
			b.ReportMetric(float64(row.StaleServes), "stale-serves-full")
		}
	}
}

// BenchmarkE18Replication runs the replicated-tier failover drill:
// fresh-lookup availability through a replica partition and a primary
// kill with promotion, against the single-server baseline, plus the
// durability headline (acked ratings lost).
func BenchmarkE18Replication(b *testing.B) {
	var res simulation.ReplicationResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunReplication(simulation.QuickReplicationConfig(18))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Availability*100, "availability-pct")
	b.ReportMetric(res.BaselineAvailability*100, "baseline-availability-pct")
	b.ReportMetric(float64(res.LostVotes), "acked-ratings-lost")
	b.ReportMetric(float64(res.Resumes), "partition-resumes")
}

// BenchmarkE19LookupThroughput measures the read-path fast lane at the
// paper's deployment scale: a mixed hot/cold lookup workload over 2,500
// programs through the HTTP handler, fast lane on vs the
// upsert-on-every-lookup baseline. Headline metrics: throughput
// speedup, p99 latency, cache hit ratio, and the fast lane's write
// transactions (which must be zero).
func BenchmarkE19LookupThroughput(b *testing.B) {
	var res simulation.LookupPerfResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunLookupPerf(simulation.DefaultLookupPerfConfig(19))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Fast.Throughput, "lookups/s")
	b.ReportMetric(res.Baseline.Throughput, "baseline-lookups/s")
	b.ReportMetric(res.Speedup, "speedup-x")
	b.ReportMetric(res.Fast.HitRatio*100, "hit-ratio-pct")
	b.ReportMetric(float64(res.Fast.P99.Nanoseconds()), "fast-p99-ns")
	b.ReportMetric(float64(res.Fast.WriteTxns), "fast-write-txns")
}

// BenchmarkE20Overload measures overload survival: the full E20 grid
// (1x and 10x offered load, static cap vs adaptive admission over a
// contention-knee service profile). Headline metrics at 10x: goodput
// for each arm, admitted p99, and the critical-lookup success rate —
// the adaptive arm must hold it at ~100% while the static cap shreds
// it.
func BenchmarkE20Overload(b *testing.B) {
	var res simulation.OverloadResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunOverload(simulation.DefaultOverloadConfig(20))
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, c := range res.Cells {
		if c.Multiplier != 10 {
			continue
		}
		b.ReportMetric(c.Goodput, c.Arm+"-goodput/s")
		b.ReportMetric(float64(c.P99.Nanoseconds()), c.Arm+"-p99-ns")
		b.ReportMetric(c.CriticalSuccess*100, c.Arm+"-critical-pct")
	}
}

// BenchmarkE21WriteGroupCommit measures storage fault tolerance and the
// group-commit pipeline: the full E21 fault grid (zero acked-write loss
// under injected EIO/ENOSPC/torn-write/kill faults) plus acked commit
// throughput against a modeled device fsync, grouped vs serialized.
// Headline metrics: acked writes/s for each arm, fsyncs per write under
// grouping (must sit well below 1), and the speedup.
func BenchmarkE21WriteGroupCommit(b *testing.B) {
	var res simulation.FaultGridResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunFaultGrid(simulation.DefaultFaultGridConfig(21))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.TotalLostAcked()), "lost-acked-writes")
	b.ReportMetric(float64(res.TotalResurrected()), "resurrected-writes")
	for _, p := range res.Perf {
		b.ReportMetric(p.WritesPerS, p.Arm+"-writes/s")
		b.ReportMetric(p.FsyncsPerW, p.Arm+"-fsyncs/write")
	}
	b.ReportMetric(res.Speedup, "group-commit-speedup-x")
}

// BenchmarkE22PartitionSafety runs the full partition grid: a 3-node
// tier promoted mid-partition under client write load, across the
// isolation, split-brain-client, and reply-loss cells. Headline
// metrics: dual-acked writes (must be zero), quarantined stale batches,
// writes acked under the new epoch, and whether the healed tier
// converged byte-identically (1 = yes on every cell).
func BenchmarkE22PartitionSafety(b *testing.B) {
	var res simulation.PartitionResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunPartition(simulation.DefaultPartitionConfig(22))
		if err != nil {
			b.Fatal(err)
		}
	}
	var dual, fenced int
	var quarantined uint64
	converged := 1.0
	for _, c := range res.Cells {
		dual += c.DualAcked
		quarantined += c.Quarantined
		fenced += c.FencedAcked
		if !c.Converged {
			converged = 0
		}
	}
	b.ReportMetric(float64(dual), "dual-acked-writes")
	b.ReportMetric(float64(quarantined), "quarantined-batches")
	b.ReportMetric(float64(fenced), "fenced-epoch-acks")
	b.ReportMetric(converged, "converged")
}

// BenchmarkE23WireProtocol measures the compact binary wire protocol at
// full scale: the E19-style mixed hot/cold lookup workload over real
// loopback HTTP, XML vs binary vs binary+batch, admission control on.
// Headline metrics: lookups/s and bytes/lookup per arm, and the
// binary+batch factors over XML — the claims are >=2x lookups/s and
// >=3x fewer bytes/lookup, enforced here at full scale.
func BenchmarkE23WireProtocol(b *testing.B) {
	var res simulation.WirePerfResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunWirePerf(simulation.DefaultWirePerfConfig(23))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.XML.Throughput, "xml-lookups/s")
	b.ReportMetric(res.Binary.Throughput, "binary-lookups/s")
	b.ReportMetric(res.BinaryBatch.Throughput, "batch-lookups/s")
	b.ReportMetric(res.XML.BytesPerLookup, "xml-B/lookup")
	b.ReportMetric(res.BinaryBatch.BytesPerLookup, "batch-B/lookup")
	b.ReportMetric(res.XML.AllocsPerLookup, "xml-allocs/lookup")
	b.ReportMetric(res.BinaryBatch.AllocsPerLookup, "batch-allocs/lookup")
	b.ReportMetric(float64(res.BinaryBatch.P99.Nanoseconds()), "batch-p99-ns")
	b.ReportMetric(res.SpeedupBatch, "batch-speedup-x")
	b.ReportMetric(res.ByteFactorBatch, "batch-byte-factor-x")
	if res.SpeedupBatch < 2 {
		b.Errorf("binary+batch speedup = %.2fx, want >= 2x", res.SpeedupBatch)
	}
	if res.ByteFactorBatch < 3 {
		b.Errorf("binary+batch byte factor = %.2fx, want >= 3x", res.ByteFactorBatch)
	}
}

// BenchmarkE24TelemetryOverhead measures what the production telemetry
// costs on the hottest path: the E23 binary-lookup workload over
// loopback HTTP, telemetry on vs compiled out, interleaved trials,
// best-of per arm. The claim enforced here: instrumentation costs less
// than 3% of throughput. The run also replays the injected-storage
// incident and asserts it stays diagnosable from /metrics + /trace
// text alone.
func BenchmarkE24TelemetryOverhead(b *testing.B) {
	var res simulation.TelemetryResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunTelemetry(simulation.DefaultTelemetryConfig(24))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(res.Off.Throughput, "off-lookups/s")
	b.ReportMetric(res.On.Throughput, "on-lookups/s")
	b.ReportMetric(res.OverheadPct, "overhead-%")
	diagnosed := 0.0
	if res.Incident.Diagnosed() {
		diagnosed = 1
	}
	b.ReportMetric(diagnosed, "incident-diagnosed")
	if res.OverheadPct >= 3 {
		b.Errorf("telemetry overhead = %.2f%%, want < 3%%", res.OverheadPct)
	}
	if !res.Incident.Diagnosed() {
		b.Errorf("storage incident not diagnosable from scrapes: %+v", res.Incident)
	}
}

// BenchmarkE25SelfHealingStorage runs the full E25 grid: seeded bit
// rot across {snapshot, wal} x {idle, commit-load, compaction}, online
// scrub detection, and replica-sourced repair. Headline metrics:
// undetected corruption and acked-write loss (both must be zero),
// byte-identical convergence, and the commit-latency arms — p99 with
// the background compactor must not carry the compaction stall the
// on-commit baseline shows in its tail.
func BenchmarkE25SelfHealingStorage(b *testing.B) {
	var res simulation.ScrubRepairResult
	for i := 0; i < b.N; i++ {
		var err error
		res, err = simulation.RunScrubRepair(simulation.DefaultScrubRepairConfig(25))
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(res.Undetected()), "undetected-corruption")
	b.ReportMetric(float64(res.TotalLostAcked()), "lost-acked-writes")
	repaired := 0.0
	if res.AllRepaired() {
		repaired = 1
	}
	b.ReportMetric(repaired, "repaired-converged")
	oc, bg := res.PerfArm("on-commit"), res.PerfArm("background")
	b.ReportMetric(float64(oc.P99.Nanoseconds()), "on-commit-p99-ns")
	b.ReportMetric(float64(bg.P99.Nanoseconds()), "background-p99-ns")
	b.ReportMetric(float64(oc.Max.Nanoseconds()), "on-commit-max-ns")
	b.ReportMetric(res.StallRatio, "commit-p99-stall-ratio-x")
	if res.Undetected() != 0 {
		b.Errorf("bit rot went undetected in %d cells, want 0", res.Undetected())
	}
	if res.TotalLostAcked() != 0 {
		b.Errorf("lost %d acked writes through repair, want 0", res.TotalLostAcked())
	}
	if !res.AllRepaired() {
		b.Errorf("not every cell repaired and converged: %+v", res.Cells)
	}
	if bg.P99 >= res.Config.CompactDelay {
		b.Errorf("background commit p99 %v carries the %v compaction stall", bg.P99, res.Config.CompactDelay)
	}
}

// BenchmarkE14StoredbIngest measures the substrate: rating-ingestion
// throughput into the embedded store through the full repository path.
func BenchmarkE14StoredbIngest(b *testing.B) {
	store := repo.OpenMemory()
	defer store.Close()
	now := vclock.Epoch

	// Pre-create users and software once.
	const users, programs = 200, 200
	metas := make([]core.SoftwareMeta, programs)
	for i := 0; i < programs; i++ {
		content := []byte(fmt.Sprintf("program-%d", i))
		metas[i] = core.SoftwareMeta{
			ID: core.ComputeSoftwareID(content), FileName: fmt.Sprintf("p%d.exe", i),
			FileSize: 10, Vendor: "Bench", Version: "1",
		}
		if _, err := store.UpsertSoftware(metas[i], now); err != nil {
			b.Fatal(err)
		}
	}
	for i := 0; i < users; i++ {
		u := repo.User{Username: fmt.Sprintf("u%06d", i), PasswordHash: "x",
			EmailHash: fmt.Sprintf("h%06d", i), SignedUpAt: now, Activated: true,
			Trust: core.NewTrust(now)}
		if err := store.CreateUser(u); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := core.Rating{
			UserID:   fmt.Sprintf("u%06d", i%users),
			Software: metas[(i/users)%programs].ID,
			Score:    1 + i%10,
			At:       now,
		}
		if _, err := store.AddRating(r, ""); err != nil && err != repo.ErrAlreadyRated {
			b.Fatal(err)
		}
	}
}

// BenchmarkE14StoredbRecovery measures crash recovery: reopening a
// store whose WAL holds a burst of committed batches.
func BenchmarkE14StoredbRecovery(b *testing.B) {
	dir := b.TempDir()
	db, err := storedb.Open(storedb.Options{Dir: dir, CompactEvery: -1})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2000; i++ {
		key := []byte(fmt.Sprintf("key-%06d", i))
		err := db.Update(func(tx *storedb.Tx) error {
			return tx.MustBucket("bench").Put(key, []byte("value"))
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	db.Close()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		db, err := storedb.Open(storedb.Options{Dir: dir, CompactEvery: -1})
		if err != nil {
			b.Fatal(err)
		}
		if db.Len() != 2000 {
			b.Fatalf("recovered %d keys", db.Len())
		}
		db.Close()
	}
}
