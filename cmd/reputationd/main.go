// Command reputationd runs the reputation server: the XML API under
// /api/, the HTML web view on /, a periodic 24-hour aggregation job,
// and durable storage in the data directory.
//
// Activation tokens are printed to standard output (a deployment would
// plug an SMTP Mailer into server.Config instead).
//
// Operational surfaces: /metrics serves the whole registry in the
// Prometheus text format (on the main listener, and additionally on
// the -metrics address when set), /trace serves the ring of recent
// slow or errored requests, and everything the daemon logs is
// structured key=value at the level selected by -log-level.
//
// Usage:
//
//	reputationd -addr :8080 -data ./data -pepper "a long secret"
//	reputationd -addr :8081 -data ./replica -pepper "a long secret" \
//	    -role replica -primary http://primary:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the -pprof listener
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"softreputation/internal/admission"
	"softreputation/internal/replication"
	"softreputation/internal/repo"
	"softreputation/internal/server"
	"softreputation/internal/storedb"
	"softreputation/internal/telemetry"
	"softreputation/internal/wire"
)

// stdoutMailer prints activation mail instead of sending it.
type stdoutMailer struct{ log *telemetry.Logger }

func (m stdoutMailer) SendActivation(email, username, token string) {
	m.log.Info("activation mail", "email", email, "user", username, "token", token)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "./reputationd-data", "data directory")
	pepper := flag.String("pepper", "", "secret string for e-mail hashing (required)")
	captcha := flag.Bool("captcha", true, "require CAPTCHA at registration")
	puzzle := flag.Int("puzzle", 0, "client-puzzle difficulty (0 disables)")
	sync := flag.Bool("sync", false, "fsync every commit")
	votesPerDay := flag.Int("votes-per-day", 0, "per-account daily vote budget (0 = unlimited)")
	pseudonyms := flag.Bool("pseudonyms", false, "publish stable pseudonyms instead of usernames")
	moderate := flag.Bool("moderate", false, "hold new comments for moderator approval (reputectl pending/approve)")
	signupsPerIP := flag.Int("signups-per-ip", 0, "per-address daily signup budget (0 = unlimited)")
	aggEvery := flag.Duration("aggregate-check", 10*time.Minute, "how often to check the 24h aggregation schedule")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handler deadline (0 disables)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent request cap before shedding (0 = uncapped; the adaptive limiter's ceiling with -admission)")
	adaptive := flag.Bool("admission", false, "adaptive priority-aware admission control instead of the static inflight cap")
	latencyTarget := flag.Duration("admission-latency", 50*time.Millisecond, "handler latency the adaptive limiter steers toward")
	grace := flag.Duration("grace", 10*time.Second, "drain window for in-flight requests at shutdown")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this address for live profiling (empty disables)")
	metricsAddr := flag.String("metrics", "", "additionally expose /metrics and /trace on this address (they are always on the main listener)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn, or error")
	fullAgg := flag.Bool("full-aggregation", false, "aggregate with the full rescan instead of the incremental dirty-set engine")
	reportCache := flag.Int("report-cache", 0, "report cache capacity in entries (0 = default, negative disables)")
	xmlOnly := flag.Bool("xml-only", false, "disable the binary wire protocol (answer binary requests with 415, for staged rollouts)")
	role := flag.String("role", "primary", "replication role: primary or replica")
	primaryURL := flag.String("primary", "", "primary base URL (required with -role replica)")
	replicaID := flag.String("replica-id", "", "identifier reported to the primary's /replstatus (defaults to the listen address)")
	replPoll := flag.Duration("repl-poll", time.Second, "how often a replica polls the primary's WAL")
	scrubEvery := flag.Duration("scrub-every", 0, "online scrub interval: re-verify every durable checksum this often (0 disables)")
	repairFrom := flag.String("repair-from", "", "healthy peer base URL to repair the store from when scrub detects corruption (replicas default to -primary)")
	flag.Parse()

	logger := telemetry.NewLogger(os.Stderr, telemetry.ParseLogLevel(*logLevel))
	fatal := func(msg string, kv ...interface{}) {
		logger.Error(msg, kv...)
		os.Exit(1)
	}

	if *pepper == "" {
		fatal("-pepper is required; the e-mail hash is only private while the secret string is")
	}
	isReplica := false
	switch *role {
	case "primary":
	case "replica":
		isReplica = true
		if *primaryURL == "" {
			fatal("-role replica requires -primary")
		}
	default:
		fatal("unknown -role (want primary or replica)", "role", *role)
	}

	store, err := repo.Open(storedb.Options{Dir: *dataDir, SyncWrites: *sync, ScrubEvery: *scrubEvery})
	if err != nil {
		fatal("open store failed", "dir", *dataDir, "err", err)
	}
	defer store.Close()

	scfg := server.Config{
		Store:                 store,
		EmailPepper:           *pepper,
		RequireCaptcha:        *captcha,
		PuzzleDifficulty:      *puzzle,
		MaxVotesPerUserPerDay: *votesPerDay,
		UsePseudonyms:         *pseudonyms,
		ModerateComments:      *moderate,
		MaxSignupsPerIPPerDay: *signupsPerIP,
		RequestTimeout:        *reqTimeout,
		MaxInflight:           *maxInflight,
		FullAggregation:       *fullAgg,
		ReportCacheEntries:    *reportCache,
		DisableBinary:         *xmlOnly,
		Mailer:                stdoutMailer{log: logger},
	}
	if *adaptive {
		scfg.AdmissionControl = true
		scfg.Admission = admission.Config{
			MaxLimit:      *maxInflight,
			LatencyTarget: *latencyTarget,
		}
	}
	var repl *replication.Replica
	// Every role mounts the publisher endpoints: replicas serve
	// /repl/snapshot and /repl/digest too, so a corrupt primary can
	// repair itself from any healthy peer — not only the other way
	// around.
	pub := replication.NewPublisher(store.DB())
	scfg.Publisher = pub
	if isReplica {
		id := *replicaID
		if id == "" {
			id = *addr
		}
		repl = &replication.Replica{
			DB:      store.DB(),
			Primary: *primaryURL,
			ID:      id,
			Logger:  logger,
			// Divergence repair quarantines displaced batches here —
			// writes acked by a deposed primary that the new epoch never
			// saw. `reputectl -data <dir> journal` lists them.
			Journal: &replication.RecoveryJournal{Path: filepath.Join(*dataDir, "recovery-journal")},
		}
		scfg.Replica = true
		scfg.PrimaryURL = *primaryURL
		scfg.ReplicaSource = repl
	} else {
		scfg.ReplicaTracker = pub
	}
	srv, err := server.New(scfg)
	if err != nil {
		fatal("server init failed", "err", err)
	}
	if repl != nil && srv.Metrics() != nil {
		repl.RegisterMetrics(srv.Metrics())
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Storage fail-safe: a WAL append/fsync failure flips the store into
	// its sticky read-only state (writes shed 503, reads keep serving);
	// the supervisor is the way back, retrying reopen-with-verify under
	// backoff until the device recovers or the operator intervenes.
	go storedb.SuperviseReopen(ctx, store.DB(), time.Second, logger.Logf)

	// Corruption fail-safe: when the scrubber (or any read path) flips
	// the store into its sticky corrupt state, the repair supervisor
	// quarantines the damaged files and restores from a healthy peer.
	// Replicas repair from their primary by default; a primary needs
	// -repair-from naming one of its replicas.
	repairSource := *repairFrom
	if repairSource == "" && isReplica {
		repairSource = *primaryURL
	}
	if repairSource != "" {
		repairer := &replication.Repairer{
			DB:     store.DB(),
			Source: repairSource,
			ID:     *replicaID,
			Logger: logger,
		}
		if srv.Metrics() != nil {
			repairer.RegisterMetrics(srv.Metrics())
		}
		go replication.SuperviseRepair(ctx, repairer, time.Second)
	}

	// Auxiliary listeners (pprof, metrics) get the same lifecycle as the
	// API listener: header timeouts against slow-loris peers and a
	// graceful shutdown tied to the drain, so the process never leaks a
	// listener past its drain window.
	serveAux := func(name, addr string, handler http.Handler) {
		aux := &http.Server{
			Addr:              addr,
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
			ReadTimeout:       15 * time.Second,
			WriteTimeout:      30 * time.Second,
			IdleTimeout:       2 * time.Minute,
		}
		go func() {
			<-ctx.Done()
			shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
			defer cancel()
			_ = aux.Shutdown(shutdownCtx)
		}()
		go func() {
			logger.Info(name+" listener up", "addr", addr)
			if err := aux.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Error(name+" listener failed", "addr", addr, "err", err)
			}
		}()
	}

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the public API address. http.DefaultServeMux
		// carries the pprof registrations from the blank import.
		serveAux("pprof", *pprofAddr, http.DefaultServeMux)
	}
	if *metricsAddr != "" && srv.Metrics() != nil {
		mux := http.NewServeMux()
		mux.HandleFunc(wire.PathMetrics, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", server.MetricsContentType)
			_ = srv.Metrics().WritePrometheus(w)
		})
		mux.HandleFunc(wire.PathTrace, func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			_ = srv.Trace().WriteText(w)
		})
		serveAux("metrics", *metricsAddr, mux)
	}

	if isReplica {
		// The replication tail. Replicas do not run the aggregation job:
		// published scores arrive through the WAL like everything else.
		go repl.Run(ctx, *replPoll)
	} else {
		// The 24-hour aggregation job: the schedule itself lives in the
		// store, so the ticker only needs to poll it.
		go func() {
			ticker := time.NewTicker(*aggEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if ran, err := srv.MaybeAggregate(); err != nil {
						logger.Error("aggregation failed", "err", err)
					} else if ran {
						logger.Info("aggregation run complete")
					}
				}
			}
		}()
	}

	// Socket-level timeouts guard against slow-loris peers; the
	// per-handler deadline lives in server.Config.RequestTimeout.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// ListenAndServe returns the moment Shutdown closes the listener,
	// before in-flight requests have drained — main must wait for
	// Shutdown itself to return or the process exit kills the drain.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful shutdown: refuse new work first (clients see 503 +
		// Retry-After and fail over), then drain in-flight requests.
		logger.Info("draining for shutdown", "grace", *grace)
		srv.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	st, _ := store.Stats()
	fmt.Printf("reputationd: serving on %s as %s (data %s: %d users, %d software, %d ratings)\n",
		*addr, *role, *dataDir, st.Users, st.Software, st.Ratings)
	logger.Info("serving", "addr", *addr, "role", *role, "data", *dataDir,
		"users", st.Users, "software", st.Software, "ratings", st.Ratings)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal("listener failed", "addr", *addr, "err", err)
	}
	<-drained
	logger.Info("shut down")
}
