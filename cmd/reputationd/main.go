// Command reputationd runs the reputation server: the XML API under
// /api/, the HTML web view on /, a periodic 24-hour aggregation job,
// and durable storage in the data directory.
//
// Activation tokens are printed to standard output (a deployment would
// plug an SMTP Mailer into server.Config instead).
//
// Usage:
//
//	reputationd -addr :8080 -data ./data -pepper "a long secret"
//	reputationd -addr :8081 -data ./replica -pepper "a long secret" \
//	    -role replica -primary http://primary:8080
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/ on the -pprof listener
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"softreputation/internal/admission"
	"softreputation/internal/replication"
	"softreputation/internal/repo"
	"softreputation/internal/server"
	"softreputation/internal/storedb"
)

// stdoutMailer prints activation mail instead of sending it.
type stdoutMailer struct{}

func (stdoutMailer) SendActivation(email, username, token string) {
	log.Printf("activation mail to %s: user=%s token=%s", email, username, token)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "./reputationd-data", "data directory")
	pepper := flag.String("pepper", "", "secret string for e-mail hashing (required)")
	captcha := flag.Bool("captcha", true, "require CAPTCHA at registration")
	puzzle := flag.Int("puzzle", 0, "client-puzzle difficulty (0 disables)")
	sync := flag.Bool("sync", false, "fsync every commit")
	votesPerDay := flag.Int("votes-per-day", 0, "per-account daily vote budget (0 = unlimited)")
	pseudonyms := flag.Bool("pseudonyms", false, "publish stable pseudonyms instead of usernames")
	moderate := flag.Bool("moderate", false, "hold new comments for moderator approval (reputectl pending/approve)")
	signupsPerIP := flag.Int("signups-per-ip", 0, "per-address daily signup budget (0 = unlimited)")
	aggEvery := flag.Duration("aggregate-check", 10*time.Minute, "how often to check the 24h aggregation schedule")
	reqTimeout := flag.Duration("request-timeout", 10*time.Second, "per-request handler deadline (0 disables)")
	maxInflight := flag.Int("max-inflight", 256, "concurrent request cap before shedding (0 = uncapped; the adaptive limiter's ceiling with -admission)")
	adaptive := flag.Bool("admission", false, "adaptive priority-aware admission control instead of the static inflight cap")
	latencyTarget := flag.Duration("admission-latency", 50*time.Millisecond, "handler latency the adaptive limiter steers toward")
	grace := flag.Duration("grace", 10*time.Second, "drain window for in-flight requests at shutdown")
	pprofAddr := flag.String("pprof", "", "expose net/http/pprof on this address for live profiling (empty disables)")
	fullAgg := flag.Bool("full-aggregation", false, "aggregate with the full rescan instead of the incremental dirty-set engine")
	reportCache := flag.Int("report-cache", 0, "report cache capacity in entries (0 = default, negative disables)")
	xmlOnly := flag.Bool("xml-only", false, "disable the binary wire protocol (answer binary requests with 415, for staged rollouts)")
	role := flag.String("role", "primary", "replication role: primary or replica")
	primaryURL := flag.String("primary", "", "primary base URL (required with -role replica)")
	replicaID := flag.String("replica-id", "", "identifier reported to the primary's /replstatus (defaults to the listen address)")
	replPoll := flag.Duration("repl-poll", time.Second, "how often a replica polls the primary's WAL")
	flag.Parse()

	if *pepper == "" {
		log.Fatal("reputationd: -pepper is required; the e-mail hash is only private while the secret string is")
	}
	isReplica := false
	switch *role {
	case "primary":
	case "replica":
		isReplica = true
		if *primaryURL == "" {
			log.Fatal("reputationd: -role replica requires -primary")
		}
	default:
		log.Fatalf("reputationd: unknown -role %q (want primary or replica)", *role)
	}

	store, err := repo.Open(storedb.Options{Dir: *dataDir, SyncWrites: *sync})
	if err != nil {
		log.Fatalf("reputationd: open store: %v", err)
	}
	defer store.Close()

	scfg := server.Config{
		Store:                 store,
		EmailPepper:           *pepper,
		RequireCaptcha:        *captcha,
		PuzzleDifficulty:      *puzzle,
		MaxVotesPerUserPerDay: *votesPerDay,
		UsePseudonyms:         *pseudonyms,
		ModerateComments:      *moderate,
		MaxSignupsPerIPPerDay: *signupsPerIP,
		RequestTimeout:        *reqTimeout,
		MaxInflight:           *maxInflight,
		FullAggregation:       *fullAgg,
		ReportCacheEntries:    *reportCache,
		DisableBinary:         *xmlOnly,
		Mailer:                stdoutMailer{},
	}
	if *adaptive {
		scfg.AdmissionControl = true
		scfg.Admission = admission.Config{
			MaxLimit:      *maxInflight,
			LatencyTarget: *latencyTarget,
		}
	}
	var repl *replication.Replica
	if isReplica {
		id := *replicaID
		if id == "" {
			id = *addr
		}
		repl = &replication.Replica{
			DB:      store.DB(),
			Primary: *primaryURL,
			ID:      id,
			// Divergence repair quarantines displaced batches here —
			// writes acked by a deposed primary that the new epoch never
			// saw. `reputectl -data <dir> journal` lists them.
			Journal: &replication.RecoveryJournal{Path: filepath.Join(*dataDir, "recovery-journal")},
		}
		scfg.Replica = true
		scfg.PrimaryURL = *primaryURL
		scfg.ReplicaSource = repl
	} else {
		pub := replication.NewPublisher(store.DB())
		scfg.Publisher = pub
		scfg.ReplicaTracker = pub
	}
	srv, err := server.New(scfg)
	if err != nil {
		log.Fatalf("reputationd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	// Storage fail-safe: a WAL append/fsync failure flips the store into
	// its sticky read-only state (writes shed 503, reads keep serving);
	// the supervisor is the way back, retrying reopen-with-verify under
	// backoff until the device recovers or the operator intervenes.
	go storedb.SuperviseReopen(ctx, store.DB(), time.Second, log.Printf)

	if *pprofAddr != "" {
		// The profiling endpoints live on their own listener so they are
		// never exposed on the public API address.
		go func() {
			log.Printf("reputationd: pprof on %s", *pprofAddr)
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				log.Printf("reputationd: pprof: %v", err)
			}
		}()
	}

	if isReplica {
		// The replication tail. Replicas do not run the aggregation job:
		// published scores arrive through the WAL like everything else.
		go repl.Run(ctx, *replPoll)
	} else {
		// The 24-hour aggregation job: the schedule itself lives in the
		// store, so the ticker only needs to poll it.
		go func() {
			ticker := time.NewTicker(*aggEvery)
			defer ticker.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-ticker.C:
					if ran, err := srv.MaybeAggregate(); err != nil {
						log.Printf("reputationd: aggregation: %v", err)
					} else if ran {
						log.Printf("reputationd: aggregation run complete")
					}
				}
			}
		}()
	}

	// Socket-level timeouts guard against slow-loris peers; the
	// per-handler deadline lives in server.Config.RequestTimeout.
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
		ReadTimeout:       15 * time.Second,
		WriteTimeout:      30 * time.Second,
		IdleTimeout:       2 * time.Minute,
	}
	// ListenAndServe returns the moment Shutdown closes the listener,
	// before in-flight requests have drained — main must wait for
	// Shutdown itself to return or the process exit kills the drain.
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		<-ctx.Done()
		// Graceful shutdown: refuse new work first (clients see 503 +
		// Retry-After and fail over), then drain in-flight requests.
		log.Println("reputationd: draining for shutdown")
		srv.SetDraining(true)
		shutdownCtx, cancel := context.WithTimeout(context.Background(), *grace)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	st, _ := store.Stats()
	fmt.Printf("reputationd: serving on %s as %s (data %s: %d users, %d software, %d ratings)\n",
		*addr, *role, *dataDir, st.Users, st.Software, st.Ratings)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("reputationd: %v", err)
	}
	<-drained
	log.Println("reputationd: shut down")
}
