// Command reputationd runs the reputation server: the XML API under
// /api/, the HTML web view on /, a periodic 24-hour aggregation job,
// and durable storage in the data directory.
//
// Activation tokens are printed to standard output (a deployment would
// plug an SMTP Mailer into server.Config instead).
//
// Usage:
//
//	reputationd -addr :8080 -data ./data -pepper "a long secret"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"time"

	"softreputation/internal/repo"
	"softreputation/internal/server"
	"softreputation/internal/storedb"
)

// stdoutMailer prints activation mail instead of sending it.
type stdoutMailer struct{}

func (stdoutMailer) SendActivation(email, username, token string) {
	log.Printf("activation mail to %s: user=%s token=%s", email, username, token)
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	dataDir := flag.String("data", "./reputationd-data", "data directory")
	pepper := flag.String("pepper", "", "secret string for e-mail hashing (required)")
	captcha := flag.Bool("captcha", true, "require CAPTCHA at registration")
	puzzle := flag.Int("puzzle", 0, "client-puzzle difficulty (0 disables)")
	sync := flag.Bool("sync", false, "fsync every commit")
	votesPerDay := flag.Int("votes-per-day", 0, "per-account daily vote budget (0 = unlimited)")
	pseudonyms := flag.Bool("pseudonyms", false, "publish stable pseudonyms instead of usernames")
	moderate := flag.Bool("moderate", false, "hold new comments for moderator approval (reputectl pending/approve)")
	signupsPerIP := flag.Int("signups-per-ip", 0, "per-address daily signup budget (0 = unlimited)")
	aggEvery := flag.Duration("aggregate-check", 10*time.Minute, "how often to check the 24h aggregation schedule")
	flag.Parse()

	if *pepper == "" {
		log.Fatal("reputationd: -pepper is required; the e-mail hash is only private while the secret string is")
	}

	store, err := repo.Open(storedb.Options{Dir: *dataDir, SyncWrites: *sync})
	if err != nil {
		log.Fatalf("reputationd: open store: %v", err)
	}
	defer store.Close()

	srv, err := server.New(server.Config{
		Store:                 store,
		EmailPepper:           *pepper,
		RequireCaptcha:        *captcha,
		PuzzleDifficulty:      *puzzle,
		MaxVotesPerUserPerDay: *votesPerDay,
		UsePseudonyms:         *pseudonyms,
		ModerateComments:      *moderate,
		MaxSignupsPerIPPerDay: *signupsPerIP,
		Mailer:                stdoutMailer{},
	})
	if err != nil {
		log.Fatalf("reputationd: %v", err)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	// The 24-hour aggregation job: the schedule itself lives in the
	// store, so the ticker only needs to poll it.
	go func() {
		ticker := time.NewTicker(*aggEvery)
		defer ticker.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-ticker.C:
				if ran, err := srv.MaybeAggregate(); err != nil {
					log.Printf("reputationd: aggregation: %v", err)
				} else if ran {
					log.Printf("reputationd: aggregation run complete")
				}
			}
		}
	}()

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = httpSrv.Shutdown(shutdownCtx)
	}()

	st, _ := store.Stats()
	fmt.Printf("reputationd: serving on %s (data %s: %d users, %d software, %d ratings)\n",
		*addr, *dataDir, st.Users, st.Software, st.Ratings)
	if err := httpSrv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		log.Fatalf("reputationd: %v", err)
	}
	log.Println("reputationd: shut down")
}
