// Command simulate regenerates the paper's tables and every experiment
// in EXPERIMENTS.md as human-readable text tables.
//
// Usage:
//
//	simulate -exp all            # everything, full scale
//	simulate -exp table1,e6,e9   # a selection
//	simulate -exp e1 -quick      # reduced scale for a fast pass
//	simulate -list               # list experiment ids
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"softreputation/internal/simulation"
)

type experiment struct {
	id   string
	desc string
	run  func(seed int64, quick bool) (fmt.Stringer, error)
}

func experiments() []experiment {
	return []experiment{
		{"table1", "Table 1: PIS classification matrix", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultCatalogConfig(seed)
			if quick {
				cfg.Total = 600
			}
			return simulation.RunTable1(cfg), nil
		}},
		{"table2", "Table 2: classification after reputation deployment", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultCatalogConfig(seed)
			if quick {
				cfg.Total = 600
			}
			return simulation.RunTable2(cfg), nil
		}},
		{"e1", "E1: database scale (2000+ rated programs)", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultScaleConfig(seed)
			if quick {
				cfg = simulation.ScaleConfig{Seed: seed, Programs: 300, Users: 80, VotesPerAgent: 12, Lookups: 300}
			}
			return simulation.RunScale(cfg)
		}},
		{"e2", "E2: trust-factor growth schedule", func(seed int64, quick bool) (fmt.Stringer, error) {
			return simulation.RunTrustGrowth(30), nil
		}},
		{"e3", "E3: rating-prompt throttle", func(seed int64, quick bool) (fmt.Stringer, error) {
			h, err := simulation.NewHarness(simulation.WorldConfig{
				Seed:       seed,
				Catalog:    simulation.CatalogConfig{Seed: seed, Total: 10, LegitFrac: 1, Vendors: 2},
				Population: simulation.PopulationConfig{Seed: seed + 1, Total: 1},
			})
			if err != nil {
				return nil, err
			}
			defer h.Close()
			cfg := simulation.DefaultPromptThrottleConfig(seed)
			if quick {
				cfg.Weeks = 4
			}
			return simulation.RunPromptThrottle(cfg, h.World.Agents[0].Session, h.API, h.World.Clock)
		}},
		{"e4", "E4: 24-hour aggregation schedule", func(seed int64, quick bool) (fmt.Stringer, error) {
			days := 7
			if quick {
				days = 3
			}
			return simulation.RunAggregationSchedule(seed, days)
		}},
		{"e5", "E5: cold start and bootstrapping", func(seed int64, quick bool) (fmt.Stringer, error) {
			users := []int{25, 100, 400}
			programs := 600
			if quick {
				users = []int{10, 50}
				programs = 150
			}
			return simulation.RunColdStart(seed, programs, users)
		}},
		{"e6", "E6: Sybil / vote-flooding defences", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultSybilConfig(seed)
			if quick {
				cfg.SybilCount = 60
				cfg.HonestUsers = 50
				cfg.HonestVotes = 25
			}
			return simulation.RunSybil(cfg)
		}},
		{"e7", "E7: trust weighting vs slander", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultTrustWeightingConfig(seed)
			if quick {
				cfg.Programs, cfg.Users, cfg.TrustWeeks, cfg.VotesPerAgent = 60, 60, 6, 20
			}
			return simulation.RunTrustWeighting(cfg)
		}},
		{"e8", "E8: polymorphic re-hashing vs vendor keying", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultPolymorphicConfig(seed)
			if quick {
				cfg.Downloads = 150
			}
			return simulation.RunPolymorphic(cfg)
		}},
		{"e9", "E9: comparison with anti-virus / anti-spyware", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultCountermeasureConfig(seed)
			if quick {
				cfg = simulation.CountermeasureConfig{Seed: seed, Programs: 100, Users: 60, Days: 30, ExecutionsPerDay: 40}
			}
			return simulation.RunCountermeasures(cfg)
		}},
		{"e10", "E10: database breach privacy", func(seed int64, quick bool) (fmt.Stringer, error) {
			users, dict := 100, 10000
			if quick {
				users, dict = 25, 500
			}
			return simulation.RunBreach(seed, users, dict)
		}},
		{"e11", "E11: host stability and signature whitelisting", func(seed int64, quick bool) (fmt.Stringer, error) {
			hosts := 20
			if quick {
				hosts = 8
			}
			return simulation.RunStability(seed, hosts)
		}},
		{"e12", "E12: corporate policy enforcement", func(seed int64, quick bool) (fmt.Stringer, error) {
			programs, users := 300, 150
			if quick {
				programs, users = 100, 60
			}
			return simulation.RunPolicyManager(seed, programs, users)
		}},
		{"e13", "E13: anonymised lookup overhead", func(seed int64, quick bool) (fmt.Stringer, error) {
			lookups := 1000
			if quick {
				lookups = 200
			}
			return simulation.RunAnonymity(seed, lookups)
		}},
		{"e15", "E15: runtime analysis as hard evidence", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultAnalysisConfig(seed)
			if quick {
				cfg.Programs, cfg.Users = 120, 20
			}
			return simulation.RunAnalysisEvidence(cfg)
		}},
		{"e16", "E16: information level vs install decisions", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultInstallStudyConfig(seed)
			if quick {
				cfg.Programs, cfg.Users, cfg.DecisionsPerUser = 120, 40, 15
			}
			return simulation.RunInstallStudy(cfg)
		}},
		{"e17", "E17: chaos — decision quality under server outages", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultChaosConfig(seed)
			if quick {
				cfg = simulation.QuickChaosConfig(seed)
			}
			return simulation.RunChaos(cfg)
		}},
		{"e18", "E18: replication — availability and durability over a replicated tier", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultReplicationConfig(seed)
			if quick {
				cfg = simulation.QuickReplicationConfig(seed)
			}
			return simulation.RunReplication(cfg)
		}},
		{"e19", "E19: read-path fast lane — lookup throughput at deployment scale", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultLookupPerfConfig(seed)
			if quick {
				cfg = simulation.QuickLookupPerfConfig(seed)
			}
			return simulation.RunLookupPerf(cfg)
		}},
		{"e20", "E20: adaptive admission — priority-aware overload survival", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultOverloadConfig(seed)
			if quick {
				cfg = simulation.QuickOverloadConfig(seed)
			}
			return simulation.RunOverload(cfg)
		}},
		{"e21", "E21: storage fault grid — durability under injected I/O failure, group-commit throughput", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultFaultGridConfig(seed)
			if quick {
				cfg = simulation.QuickFaultGridConfig(seed)
			}
			return simulation.RunFaultGrid(cfg)
		}},
		{"e22", "E22: partition safety — epoch fencing and divergence repair under split-brain", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultPartitionConfig(seed)
			if quick {
				cfg = simulation.QuickPartitionConfig(seed)
			}
			return simulation.RunPartition(cfg)
		}},
		{"e23", "E23: compact binary wire protocol — lookups/s and bytes/lookup, XML vs binary vs binary+batch", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultWirePerfConfig(seed)
			if quick {
				cfg = simulation.QuickWirePerfConfig(seed)
			}
			return simulation.RunWirePerf(cfg)
		}},
		{"e24", "E24: production telemetry — instrumentation overhead and metrics-only incident diagnosis", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultTelemetryConfig(seed)
			if quick {
				cfg = simulation.QuickTelemetryConfig(seed)
			}
			return simulation.RunTelemetry(cfg)
		}},
		{"e25", "E25: self-healing storage — scrub detection of seeded bit rot, replica-sourced repair, background compaction latency", func(seed int64, quick bool) (fmt.Stringer, error) {
			cfg := simulation.DefaultScrubRepairConfig(seed)
			if quick {
				cfg = simulation.QuickScrubRepairConfig(seed)
			}
			return simulation.RunScrubRepair(cfg)
		}},
	}
}

func main() {
	exp := flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
	seed := flag.Int64("seed", 1, "simulation seed")
	quick := flag.Bool("quick", false, "reduced scale for a fast pass")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	all := experiments()
	if *list {
		for _, e := range all {
			fmt.Printf("%-8s %s\n", e.id, e.desc)
		}
		return
	}

	want := map[string]bool{}
	runAll := *exp == "all"
	if !runAll {
		for _, id := range strings.Split(*exp, ",") {
			want[strings.TrimSpace(strings.ToLower(id))] = true
		}
	}
	// Named aliases for memorable invocations.
	if want["chaos"] {
		want["e17"] = true
	}
	if want["replication"] {
		want["e18"] = true
	}
	if want["lookupperf"] {
		want["e19"] = true
	}
	if want["overload"] {
		want["e20"] = true
	}
	if want["faultgrid"] {
		want["e21"] = true
	}
	if want["partition"] {
		want["e22"] = true
	}
	if want["wireperf"] {
		want["e23"] = true
	}
	if want["telemetry"] {
		want["e24"] = true
	}
	if want["scrub"] {
		want["e25"] = true
	}

	matched := 0
	for _, e := range all {
		if !runAll && !want[e.id] {
			continue
		}
		matched++
		fmt.Printf("==> %s — %s\n\n", e.id, e.desc)
		res, err := e.run(*seed, *quick)
		if err != nil {
			fmt.Fprintf(os.Stderr, "simulate: %s: %v\n", e.id, err)
			os.Exit(1)
		}
		fmt.Println(res.String())
	}
	if matched == 0 {
		fmt.Fprintf(os.Stderr, "simulate: no experiment matches %q (use -list)\n", *exp)
		os.Exit(2)
	}
}
