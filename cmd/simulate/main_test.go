package main

import (
	"strings"
	"testing"
)

func TestExperimentRegistry(t *testing.T) {
	all := experiments()
	if len(all) < 16 {
		t.Fatalf("registry holds %d experiments", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if e.id == "" || e.desc == "" || e.run == nil {
			t.Fatalf("incomplete experiment entry: %+v", e)
		}
		if seen[e.id] {
			t.Fatalf("duplicate experiment id %q", e.id)
		}
		seen[e.id] = true
		if e.id != strings.ToLower(e.id) {
			t.Fatalf("experiment id %q must be lowercase", e.id)
		}
	}
	// The ids documented in EXPERIMENTS.md must exist.
	for _, id := range []string{"table1", "table2", "e1", "e6", "e9", "e15", "e16"} {
		if !seen[id] {
			t.Fatalf("missing experiment %q", id)
		}
	}
}

func TestCheapExperimentsRunQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("runs two experiments")
	}
	for _, id := range []string{"table1", "e2"} {
		for _, e := range experiments() {
			if e.id != id {
				continue
			}
			res, err := e.run(1, true)
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if res.String() == "" {
				t.Fatalf("%s rendered empty", id)
			}
		}
	}
}
