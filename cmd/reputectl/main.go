// Command reputectl administers a reputation database offline: stats,
// forced aggregation runs, bootstrap imports, and record inspection.
// Run it against the server's data directory while the daemon is
// stopped (the store is single-process).
//
// Usage:
//
//	reputectl -data ./data stats
//	reputectl -data ./data aggregate
//	reputectl -data ./data bootstrap seed.csv
//	reputectl -data ./data software <hex id>
//	reputectl -data ./data user <name>
//	reputectl -data ./data top 20
//	reputectl -data ./data journal
//	reputectl health http://localhost:8080
//	reputectl scrubstatus http://localhost:8080
//	reputectl metrics http://localhost:8080 repcache
//	reputectl trace http://localhost:8080
//
// health, loadstatus, storagestatus, scrubstatus, metrics, and trace
// are the online commands: they query a running server's observability
// endpoints (/healthz, /replstatus, /metrics, /trace) instead of
// opening the store.
//
// Bootstrap CSV columns: filename,vendor,version,size,score,votes,behaviors
// (behaviors is the comma-free "|"-separated flag list, e.g.
// "displays-ads|bundled-software", or empty).
package main

import (
	"encoding/csv"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"softreputation/internal/core"
	"softreputation/internal/replication"
	"softreputation/internal/repo"
	"softreputation/internal/server"
	"softreputation/internal/storedb"
	"softreputation/internal/wire"
)

func main() {
	dataDir := flag.String("data", "./reputationd-data", "data directory")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("reputectl: need a command: stats | aggregate | bootstrap <csv> | software <id> | user <name> | top [n] | check | pending | approve <id> | journal | health <url> | loadstatus <url> | storagestatus <url> | scrubstatus <url> | metrics <url> [filter] | trace <url>")
	}

	// health, loadstatus, metrics, and trace talk to a running server
	// over HTTP, so they must not open the (single-process) store.
	if args[0] == "health" {
		if len(args) < 2 {
			log.Fatal("reputectl: health needs a server base URL")
		}
		cmdHealth(args[1])
		return
	}
	if args[0] == "metrics" {
		if len(args) < 2 {
			log.Fatal("reputectl: metrics needs a server base URL")
		}
		filter := ""
		if len(args) >= 3 {
			filter = args[2]
		}
		cmdMetrics(args[1], filter)
		return
	}
	if args[0] == "trace" {
		if len(args) < 2 {
			log.Fatal("reputectl: trace needs a server base URL")
		}
		cmdTrace(args[1])
		return
	}
	if args[0] == "loadstatus" {
		if len(args) < 2 {
			log.Fatal("reputectl: loadstatus needs a server base URL")
		}
		cmdLoadStatus(args[1])
		return
	}
	if args[0] == "storagestatus" {
		if len(args) < 2 {
			log.Fatal("reputectl: storagestatus needs a server base URL")
		}
		cmdStorageStatus(args[1])
		return
	}
	if args[0] == "scrubstatus" {
		if len(args) < 2 {
			log.Fatal("reputectl: scrubstatus needs a server base URL")
		}
		cmdScrubStatus(args[1])
		return
	}
	// journal reads the recovery journal file directly, not the store,
	// so it works alongside a running daemon.
	if args[0] == "journal" {
		cmdJournal(filepath.Join(*dataDir, "recovery-journal"))
		return
	}

	store, err := repo.Open(storedb.Options{Dir: *dataDir})
	if err != nil {
		log.Fatalf("reputectl: open store: %v", err)
	}
	defer store.Close()

	switch args[0] {
	case "stats":
		cmdStats(store)
	case "aggregate":
		cmdAggregate(store)
	case "bootstrap":
		if len(args) < 2 {
			log.Fatal("reputectl: bootstrap needs a CSV file")
		}
		cmdBootstrap(store, args[1])
	case "software":
		if len(args) < 2 {
			log.Fatal("reputectl: software needs a hex id")
		}
		cmdSoftware(store, args[1])
	case "user":
		if len(args) < 2 {
			log.Fatal("reputectl: user needs a username")
		}
		cmdUser(store, args[1])
	case "check":
		cmdCheck(store)
	case "pending":
		cmdPending(store)
	case "approve":
		if len(args) < 2 {
			log.Fatal("reputectl: approve needs a comment id")
		}
		cmdApprove(store, args[1])
	case "top":
		n := 20
		if len(args) >= 2 {
			if v, err := strconv.Atoi(args[1]); err == nil {
				n = v
			}
		}
		cmdTop(store, n)
	default:
		log.Fatalf("reputectl: unknown command %q", args[0])
	}
}

func cmdPending(store *repo.Store) {
	pending, err := store.PendingComments()
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	if len(pending) == 0 {
		fmt.Println("moderation queue is empty")
		return
	}
	for _, c := range pending {
		fmt.Printf("#%d [%s on %s] %s\n", c.ID, c.UserID, c.Software, c.Text)
	}
}

func cmdApprove(store *repo.Store, idArg string) {
	id, err := strconv.ParseUint(idArg, 10, 64)
	if err != nil {
		log.Fatalf("reputectl: bad comment id %q", idArg)
	}
	if err := store.SetCommentHidden(id, false); err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	fmt.Printf("comment #%d approved\n", id)
}

func cmdCheck(store *repo.Store) {
	problems, err := store.CheckIntegrity()
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	if len(problems) == 0 {
		fmt.Println("integrity check passed: no problems found")
		return
	}
	for _, p := range problems {
		fmt.Println("PROBLEM:", p)
	}
	os.Exit(1)
}

func cmdStats(store *repo.Store) {
	st, err := store.Stats()
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	fmt.Printf("users     %d\nsoftware  %d\nratings   %d\ncomments  %d\nremarks   %d\n",
		st.Users, st.Software, st.Ratings, st.Comments, st.Remarks)
}

func cmdAggregate(store *repo.Store) {
	srv, err := server.New(server.Config{Store: store})
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	if err := srv.RunAggregation(); err != nil {
		log.Fatalf("reputectl: aggregation: %v", err)
	}
	fmt.Println("aggregation run complete")
}

func cmdBootstrap(store *repo.Store, path string) {
	f, err := os.Open(path)
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	defer f.Close()
	rows, err := csv.NewReader(f).ReadAll()
	if err != nil {
		log.Fatalf("reputectl: parse csv: %v", err)
	}
	srv, err := server.New(server.Config{Store: store})
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	var entries []server.BootstrapEntry
	for i, row := range rows {
		if len(row) != 7 {
			log.Fatalf("reputectl: row %d: want 7 columns, got %d", i+1, len(row))
		}
		size, _ := strconv.ParseInt(row[3], 10, 64)
		score, _ := strconv.ParseFloat(row[4], 64)
		votes, _ := strconv.Atoi(row[5])
		behaviors, err := core.ParseBehavior(strings.ReplaceAll(row[6], "|", ","))
		if err != nil {
			log.Fatalf("reputectl: row %d: %v", i+1, err)
		}
		// Imported entries are identified by a synthetic content image:
		// filename+vendor+version, which keeps re-imports idempotent.
		content := []byte(row[0] + "\x00" + row[1] + "\x00" + row[2])
		entries = append(entries, server.BootstrapEntry{
			Meta: core.SoftwareMeta{
				ID:       core.ComputeSoftwareID(content),
				FileName: row[0],
				Vendor:   row[1],
				Version:  row[2],
				FileSize: size,
			},
			Score:     score,
			Votes:     votes,
			Behaviors: behaviors,
		})
	}
	if err := srv.Bootstrap(entries); err != nil {
		log.Fatalf("reputectl: bootstrap: %v", err)
	}
	fmt.Printf("imported %d entries\n", len(entries))
}

func cmdSoftware(store *repo.Store, hexID string) {
	id, err := core.ParseSoftwareID(hexID)
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	sw, found, err := store.GetSoftware(id)
	if err != nil || !found {
		log.Fatalf("reputectl: software not found (%v)", err)
	}
	fmt.Printf("file     %s\nvendor   %s\nversion  %s\nsize     %d\nfirst    %s\n",
		sw.Meta.FileName, sw.Meta.Vendor, sw.Meta.Version, sw.Meta.FileSize, sw.FirstSeenAt)
	if sc, ok, _ := store.GetScore(id); ok {
		fmt.Printf("score    %.2f from %d votes\nbehavior %s\n", sc.Score, sc.Votes, sc.Behaviors)
	} else {
		fmt.Println("score    (unrated)")
	}
	comments, _ := store.CommentsForSoftware(id)
	for _, c := range comments {
		fmt.Printf("comment  [%s] %s (+%d/-%d)\n", c.UserID, c.Text, c.Positive, c.Negative)
	}
}

func cmdUser(store *repo.Store, name string) {
	u, found, err := store.GetUser(name)
	if err != nil || !found {
		log.Fatalf("reputectl: user not found (%v)", err)
	}
	fmt.Printf("username   %s\nactivated  %v\ntrust      %.1f\nsigned up  %s\nlast login %s\n",
		u.Username, u.Activated, u.Trust.Value, u.SignedUpAt, u.LastLoginAt)
	rated, _ := store.SoftwareRatedBy(name)
	fmt.Printf("rated      %d programs\n", len(rated))
}

func cmdTop(store *repo.Store, n int) {
	type row struct {
		name  string
		score float64
		votes int
	}
	var rows []row
	err := store.ForEachSoftware(func(sw repo.Software) bool {
		if sc, ok, _ := store.GetScore(sw.Meta.ID); ok && sc.Votes > 0 {
			rows = append(rows, row{sw.Meta.FileName, sc.Score, sc.Votes})
		}
		return true
	})
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].score > rows[j].score })
	if len(rows) > n {
		rows = rows[:n]
	}
	for i, r := range rows {
		fmt.Printf("%3d. %-40s %5.2f (%d votes)\n", i+1, r.name, r.score, r.votes)
	}
}

// cmdHealth queries a running server's /healthz and /replstatus and
// prints the tier's state: role, sequence position, lag, and — on a
// primary — every known replica's progress.
func cmdHealth(base string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}

	var h wire.HealthzResponse
	if err := fetchXML(cl, base+wire.PathHealthz, &h); err != nil {
		log.Fatalf("reputectl: healthz: %v", err)
	}
	fmt.Printf("role:      %s\n", h.Role)
	if h.Protocols != "" {
		fmt.Printf("protocols: %s\n", h.Protocols)
	} else {
		fmt.Println("protocols: xml (pre-binary server)")
	}
	if h.Primary != "" {
		fmt.Printf("primary:   %s\n", h.Primary)
	}
	fmt.Printf("epoch:     %d\n", h.Epoch)
	if h.Fenced {
		fmt.Println("fenced:    true (a higher epoch exists; writes refused)")
	}
	fmt.Printf("seq:       %d\n", h.Seq)
	fmt.Printf("lag:       %d\n", h.Lag)
	fmt.Printf("draining:  %v\n", h.Draining)
	fmt.Printf("inflight:  %d\n", h.Inflight)

	var rs wire.ReplStatusResponse
	if err := fetchXML(cl, base+wire.PathReplStatus, &rs); err != nil {
		log.Fatalf("reputectl: replstatus: %v", err)
	}
	fmt.Printf("snap-seq:  %d\n", rs.SnapSeq)
	fmt.Printf("digest:    %016x\n", rs.Digest)
	if len(rs.Replicas) == 0 {
		fmt.Println("replicas:  none tracked")
	} else {
		fmt.Println("replicas:")
		for _, r := range rs.Replicas {
			fmt.Printf("  %-20s ack-seq %-8d lag %-6d snapshots %-3d last poll %s\n",
				r.ID, r.AckSeq, r.Lag, r.Snapshots, r.LastPoll)
		}
	}

	printRequestRates(cl, base)
}

// rateSampleGap separates the two /metrics samples the request- and
// error-rate figures are computed from.
const rateSampleGap = time.Second

// printRequestRates samples /metrics twice and prints the request rate
// and error rate over the gap. Servers without /metrics (older builds,
// or telemetry disabled) are skipped silently — health must keep
// working against them.
func printRequestRates(cl *http.Client, base string) {
	first, err := fetchText(cl, base+wire.PathMetrics)
	if err != nil {
		return
	}
	time.Sleep(rateSampleGap)
	second, err := fetchText(cl, base+wire.PathMetrics)
	if err != nil {
		return
	}
	t1, e1 := sumRequestTotals(first)
	t2, e2 := sumRequestTotals(second)
	secs := rateSampleGap.Seconds()
	dt, de := t2-t1, e2-e1
	fmt.Printf("req-rate:  %.1f/s (over %s)\n", dt/secs, rateSampleGap)
	if dt > 0 {
		fmt.Printf("err-rate:  %.1f%% 5xx\n", 100*de/dt)
	} else {
		fmt.Println("err-rate:  n/a (no requests in sample window)")
	}
}

// sumRequestTotals adds up reputation_http_requests_total across every
// label combination, returning the grand total and the 5xx share.
func sumRequestTotals(text string) (total, errors5xx float64) {
	for _, line := range strings.Split(text, "\n") {
		if !strings.HasPrefix(line, "reputation_http_requests_total") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			continue
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			continue
		}
		total += v
		if strings.Contains(line, `code="5xx"`) {
			errors5xx += v
		}
	}
	return total, errors5xx
}

// cmdMetrics dumps a running server's /metrics page, optionally keeping
// only the lines (and family headers) containing filter.
func cmdMetrics(base, filter string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}
	text, err := fetchText(cl, base+wire.PathMetrics)
	if err != nil {
		log.Fatalf("reputectl: metrics: %v", err)
	}
	if filter == "" {
		fmt.Print(text)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(text, "\n"), "\n") {
		if strings.Contains(line, filter) {
			fmt.Println(line)
		}
	}
}

// cmdTrace dumps a running server's /trace page: the ring of recent
// slow or errored requests, newest first, with their request IDs.
func cmdTrace(base string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}
	text, err := fetchText(cl, base+wire.PathTrace)
	if err != nil {
		log.Fatalf("reputectl: trace: %v", err)
	}
	fmt.Print(text)
}

// cmdLoadStatus queries a running server's /healthz and prints its load
// picture: inflight requests, the adaptive limiter's concurrency
// estimate, the brownout level, and per-class admit/shed/throttle
// counters. /healthz bypasses the admission gate, so this works
// precisely when the server is shedding.
func cmdLoadStatus(base string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}

	var h wire.HealthzResponse
	if err := fetchXML(cl, base+wire.PathHealthz, &h); err != nil {
		log.Fatalf("reputectl: healthz: %v", err)
	}
	fmt.Printf("inflight:  %d\n", h.Inflight)
	fmt.Printf("draining:  %v\n", h.Draining)
	if h.Brownout == "" {
		fmt.Println("admission: static cap (adaptive admission disabled)")
		return
	}
	fmt.Printf("limit:     %d\n", h.AdmitLimit)
	fmt.Printf("brownout:  %s\n", h.Brownout)
	fmt.Println("classes:")
	for _, c := range h.Classes {
		fmt.Printf("  %-12s admitted %-10d shed %-10d throttled %d\n",
			c.Class, c.Admitted, c.Shed, c.Throttled)
	}
}

// cmdStorageStatus queries a running server's /healthz and prints the
// storage picture: the fail-safe state (ok, or sticky failed with its
// cause), how many supervised reopens the store has survived, and the
// group-commit telemetry — mean commits per WAL write and fsyncs per
// commit, the amortization the write pipeline exists for.
func cmdStorageStatus(base string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}

	var h wire.HealthzResponse
	if err := fetchXML(cl, base+wire.PathHealthz, &h); err != nil {
		log.Fatalf("reputectl: healthz: %v", err)
	}
	st := h.Storage
	if st == nil {
		fmt.Println("storage:   not reported (older server)")
		return
	}
	fmt.Printf("storage:   %s\n", st.State)
	if st.State == wire.StorageFailed {
		fmt.Printf("failure:   %s\n", st.LastFailure)
		fmt.Println("writes:    shedding 503 unavailable; reads served from last durable state")
	}
	if st.State == wire.StorageCorrupt {
		fmt.Printf("failure:   %s\n", st.LastFailure)
		fmt.Printf("unit:      %s\n", st.CorruptUnit)
		fmt.Println("writes:    shedding 503 unavailable; awaiting repair from a healthy peer")
	}
	fmt.Printf("reopens:   %d\n", st.Reopens)
	fmt.Printf("wal:       %d commits in %d group writes, %d fsyncs\n",
		st.WALBatches, st.WALGroups, st.WALFsyncs)
	if st.WALGroups > 0 {
		fmt.Printf("depth:     %.1f commits per WAL write\n",
			float64(st.WALBatches)/float64(st.WALGroups))
	}
	if st.WALBatches > 0 {
		fmt.Printf("fsyncs:    %.3f per commit\n",
			float64(st.WALFsyncs)/float64(st.WALBatches))
	}
}

// cmdScrubStatus queries a running server's /healthz and prints the
// self-healing picture: the sticky corruption state (with the damaged
// unit when scrub found one), the online scrubber's progress, and the
// background compactor's position behind the commit stream. /healthz
// bypasses the admission gate, so this works precisely when a corrupt
// store is shedding writes.
func cmdScrubStatus(base string) {
	base = strings.TrimRight(base, "/")
	cl := &http.Client{Timeout: 5 * time.Second}

	var h wire.HealthzResponse
	if err := fetchXML(cl, base+wire.PathHealthz, &h); err != nil {
		log.Fatalf("reputectl: healthz: %v", err)
	}
	st := h.Storage
	if st == nil {
		fmt.Println("storage:     not reported (older server)")
		return
	}
	fmt.Printf("storage:     %s\n", st.State)
	if st.State == wire.StorageCorrupt {
		fmt.Printf("cause:       %s\n", st.LastFailure)
		fmt.Printf("unit:        %s\n", st.CorruptUnit)
		fmt.Println("writes:      shedding 503 unavailable; awaiting repair from a healthy peer")
	}
	fmt.Printf("scrub-runs:  %d\n", st.ScrubRuns)
	fmt.Printf("blocks:      %d verified\n", st.ScrubBlocks)
	fmt.Printf("corruptions: %d detected since open\n", st.Corruptions)
	if st.LastScrubUnix > 0 {
		fmt.Printf("last-scrub:  %s\n", time.Unix(st.LastScrubUnix, 0).UTC().Format(time.RFC3339))
	} else {
		fmt.Println("last-scrub:  never (enable with reputationd -scrub-every)")
	}
	fmt.Printf("compactions: %d\n", st.Compactions)
	fmt.Printf("compact-lag: %d commits behind the WAL tail\n", st.CompactorLag)
}

// cmdJournal prints the recovery journal: writes that were acknowledged
// by a deposed primary and displaced by the epoch that superseded it.
// Divergence repair quarantines them here instead of silently dropping
// (the user was told the write succeeded) or keeping them (the new
// primary's history says otherwise); each needs an operator decision to
// replay or discard.
func cmdJournal(path string) {
	entries, err := replication.ReadJournal(path)
	if err != nil {
		log.Fatalf("reputectl: %v", err)
	}
	if len(entries) == 0 {
		fmt.Println("recovery journal is empty: no writes displaced by failover")
		return
	}
	fmt.Printf("%d quarantined batch(es) in %s\n", len(entries), path)
	for i, e := range entries {
		fmt.Printf("#%d seq %d: acked under epoch %d, displaced by epoch %d, %d op(s)\n",
			i+1, e.Batch.Seq, e.AckedEpoch, e.SupersededBy, len(e.Batch.Ops))
		for _, op := range e.Batch.Ops {
			verb := "put"
			if op.Delete {
				verb = "del"
			}
			fmt.Printf("   %s %q (%d bytes)\n", verb, op.Key, len(op.Val))
		}
	}
}

// fetchText GETs url and returns the body as text.
func fetchText(cl *http.Client, url string) (string, error) {
	resp, err := cl.Get(url)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("http %s", resp.Status)
	}
	var b strings.Builder
	if _, err := io.Copy(&b, resp.Body); err != nil {
		return "", err
	}
	return b.String(), nil
}

// fetchXML GETs url and decodes the XML document into out.
func fetchXML(cl *http.Client, url string, out interface{}) error {
	resp, err := cl.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("http %s", resp.Status)
	}
	return wire.Decode(resp.Body, out)
}
