// Command repclient talks to a reputation server from the command line:
// registration, activation, login, lookups on real files, voting and
// vendor reports.
//
// Usage:
//
//	repclient -server http://localhost:8080 register -user alice -pass pw -email a@example.com
//	repclient -server ... activate -token <token from the activation mail>
//	repclient -server ... lookup /path/to/file.exe
//	repclient -server ... vote -user alice -pass pw -score 3 -comment "pop-ups" /path/file.exe
//	repclient -server ... vendor "Acme Corp"
//	repclient -server ... stats
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"strings"

	"softreputation/internal/client"
	"softreputation/internal/core"
	"softreputation/internal/identity"
	"softreputation/internal/wire"
)

func main() {
	serverURL := flag.String("server", "http://localhost:8080", "server base URL")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		log.Fatal("repclient: need a command: register | activate | lookup | vote | vendor | stats")
	}
	api := client.NewAPI(*serverURL, nil)

	cmd, rest := args[0], args[1:]
	switch cmd {
	case "register":
		cmdRegister(api, rest)
	case "activate":
		cmdActivate(api, rest)
	case "lookup":
		cmdLookup(api, rest)
	case "vote":
		cmdVote(api, rest)
	case "vendor":
		cmdVendor(api, rest)
	case "stats":
		cmdStats(api)
	default:
		log.Fatalf("repclient: unknown command %q", cmd)
	}
}

func cmdRegister(api *client.API, args []string) {
	fs := flag.NewFlagSet("register", flag.ExitOnError)
	user := fs.String("user", "", "username")
	pass := fs.String("pass", "", "password")
	email := fs.String("email", "", "e-mail address (hashed server-side)")
	fs.Parse(args)
	if *user == "" || *pass == "" || *email == "" {
		log.Fatal("repclient: register needs -user, -pass and -email")
	}
	// Fetch the anti-automation challenge. The CAPTCHA cannot be solved
	// from a CLI against a real deployment; servers run for development
	// accept registrations without one when -captcha=false.
	ch, err := api.Challenge(context.Background())
	if err != nil {
		log.Fatalf("repclient: %v", err)
	}
	req := wire.RegisterRequest{Username: *user, Password: *pass, Email: *email}
	if ch.PuzzleDifficulty > 0 {
		// The client puzzle is solvable by honest CPU work.
		puzzle := puzzleFromChallenge(ch)
		sol, hashes := puzzle.Solve()
		fmt.Printf("solved client puzzle (difficulty %d) in %d hashes\n", ch.PuzzleDifficulty, hashes)
		req.PuzzleNonce = ch.PuzzleNonce
		req.PuzzleSolution = sol
	}
	if err := api.Register(context.Background(), req); err != nil {
		log.Fatalf("repclient: register: %v", err)
	}
	fmt.Printf("registered %q — check the activation mail for your token\n", *user)
}

func cmdActivate(api *client.API, args []string) {
	fs := flag.NewFlagSet("activate", flag.ExitOnError)
	token := fs.String("token", "", "activation token")
	fs.Parse(args)
	if *token == "" {
		log.Fatal("repclient: activate needs -token")
	}
	user, err := api.Activate(context.Background(), *token)
	if err != nil {
		log.Fatalf("repclient: activate: %v", err)
	}
	fmt.Printf("account %q activated; you can log in now\n", user)
}

// metaForFile derives the §3.3 metadata for an arbitrary local file:
// content hash, name and size. Vendor/version live inside real PE
// resources, which plain files lack.
func metaForFile(path string) (core.SoftwareMeta, error) {
	content, err := os.ReadFile(path)
	if err != nil {
		return core.SoftwareMeta{}, err
	}
	return core.SoftwareMeta{
		ID:       core.ComputeSoftwareID(content),
		FileName: filepath.Base(path),
		FileSize: int64(len(content)),
	}, nil
}

func cmdLookup(api *client.API, args []string) {
	fs := flag.NewFlagSet("lookup", flag.ExitOnError)
	feeds := fs.String("feeds", "", "comma-separated expert feeds to consult")
	fs.Parse(args)
	if fs.NArg() < 1 {
		log.Fatal("repclient: lookup needs a file path")
	}
	meta, err := metaForFile(fs.Arg(0))
	if err != nil {
		log.Fatalf("repclient: %v", err)
	}
	var feedList []string
	if *feeds != "" {
		feedList = strings.Split(*feeds, ",")
	}
	rep, err := api.Lookup(context.Background(), meta, feedList...)
	if err != nil {
		log.Fatalf("repclient: lookup: %v", err)
	}
	fmt.Printf("id        %s\nknown     %v\n", meta.ID, rep.Known)
	if rep.Votes > 0 {
		fmt.Printf("score     %.2f from %d votes\nbehaviour %s\n", rep.Score, rep.Votes, rep.Behaviors)
	} else {
		fmt.Println("score     (unrated)")
	}
	if rep.Vendor != "" {
		fmt.Printf("vendor    %s (%.2f over %d programs)\n", rep.Vendor, rep.VendorScore, rep.VendorCount)
	}
	for _, c := range rep.Comments {
		fmt.Printf("comment   [%s, trust %.0f] %s (+%d/-%d)\n", c.User, c.AuthorTrust, c.Text, c.Positive, c.Negative)
	}
	for _, a := range rep.Advice {
		fmt.Printf("advice    [%s] score %.1f, %s — %s\n", a.Feed, a.Score, a.Behaviors, a.Note)
	}
}

func cmdVote(api *client.API, args []string) {
	fs := flag.NewFlagSet("vote", flag.ExitOnError)
	user := fs.String("user", "", "username")
	pass := fs.String("pass", "", "password")
	score := fs.Int("score", 0, "score 1-10")
	comment := fs.String("comment", "", "optional comment")
	behaviors := fs.String("behaviors", "", "observed behaviours, e.g. displays-ads,tracks-usage")
	fs.Parse(args)
	if fs.NArg() < 1 {
		log.Fatal("repclient: vote needs a file path after the flags")
	}
	meta, err := metaForFile(fs.Arg(0))
	if err != nil {
		log.Fatalf("repclient: %v", err)
	}
	b, err := core.ParseBehavior(*behaviors)
	if err != nil {
		log.Fatalf("repclient: %v", err)
	}
	session, err := api.Login(context.Background(), *user, *pass)
	if err != nil {
		log.Fatalf("repclient: login: %v", err)
	}
	cid, err := api.Vote(context.Background(), session, meta, client.Rating{Score: *score, Behaviors: b, Comment: *comment})
	if err != nil {
		log.Fatalf("repclient: vote: %v", err)
	}
	fmt.Printf("vote recorded for %s", meta.FileName)
	if cid != 0 {
		fmt.Printf(" (comment #%d)", cid)
	}
	fmt.Println("\nnote: scores publish at the next 24-hour aggregation run")
}

func cmdVendor(api *client.API, args []string) {
	if len(args) < 1 {
		log.Fatal("repclient: vendor needs a name")
	}
	rep, err := api.Vendor(context.Background(), args[0])
	if err != nil {
		log.Fatalf("repclient: vendor: %v", err)
	}
	if !rep.Known {
		fmt.Printf("vendor %q has no derived rating yet\n", args[0])
		return
	}
	fmt.Printf("vendor %s: %.2f over %d rated programs\n", rep.Vendor, rep.Score, rep.SoftwareCount)
}

func cmdStats(api *client.API) {
	st, err := api.Stats(context.Background())
	if err != nil {
		log.Fatalf("repclient: stats: %v", err)
	}
	fmt.Printf("users %d, software %d, ratings %d, comments %d, remarks %d\n",
		st.Users, st.Software, st.Ratings, st.Comments, st.Remarks)
}

// puzzleFromChallenge rebuilds the client puzzle from the wire form.
func puzzleFromChallenge(ch wire.ChallengeResponse) identity.Puzzle {
	return identity.Puzzle{Nonce: ch.PuzzleNonce, Difficulty: ch.PuzzleDifficulty}
}
