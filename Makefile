GO ?= go

.PHONY: build test vet staticcheck race bench bench-smoke fuzz-smoke metrics-lint scrub-smoke simulate verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed (CI installs it; local
# builds without it skip with a note rather than fail — the repo takes
# no dependency on having it present).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs the E19 lookup-throughput, E20 overload, E21
# fault-grid, E22 partition-safety, E23 wire-protocol, E24 telemetry,
# and E25 self-healing-storage benchmarks once each, as cheap
# regression tripwires for the read-path fast lane, the admission
# layer, the group-commit write pipeline, epoch-fenced failover, the
# binary wire protocol's speed and byte claims, the
# instrumentation-overhead budget, and scrub detection + replica repair
# + background-compaction commit tails.
bench-smoke:
	$(GO) test -run=NONE -bench='E19|E20|E21|E22|E23|E24|E25' -benchtime=1x .

# metrics-lint checks every registered metric against the naming and
# shape rules (counters end in _total, non-empty help, valid label
# names, histograms with buckets) by running the registry lint over the
# full server registration.
metrics-lint:
	$(GO) test -run='TestMetricsLint' ./internal/server

# fuzz-smoke gives the fuzzers a short budget each: mutated WAL tails
# (CRC flips, truncations, spliced frames) against the recovery prefix
# property, mutated checksummed snapshots (the same mutator discipline)
# against the block decoder and the scrub verifier, and mutated binary
# wire frames against the frame codec, on top of the deterministic
# corpora the test suite always replays.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALTail -fuzztime=15s ./internal/storedb
	$(GO) test -run='^$$' -fuzz=FuzzSnapshot -fuzztime=15s ./internal/storedb
	$(GO) test -run='^$$' -fuzz=FuzzBinaryFrame -fuzztime=15s ./internal/wire

# scrub-smoke runs the bit-flip corruption matrix (snapshot header /
# snapshot block / WAL frame), the quarantine-and-restore path, and the
# quick E25 scrub-and-repair grid under the race detector — the
# self-healing storage gate.
scrub-smoke:
	$(GO) test -race -run='TestScrub|TestQuarantine|TestSnapshotFlip|TestSnapshotTruncation|TestOpenRemovesOrphanTemps|TestE25' ./internal/storedb ./internal/simulation

simulate:
	$(GO) run ./cmd/simulate -exp all -quick

# verify is the gate for every change: tier-1 (build + test) plus vet,
# staticcheck, the race detector, the metrics lint, the scrub smoke,
# the benchmark smoke, and the fuzz smoke.
verify: build vet staticcheck race test metrics-lint scrub-smoke bench-smoke fuzz-smoke
	@echo "verify: OK"
