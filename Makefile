GO ?= go

.PHONY: build test vet race bench bench-smoke simulate verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs the E19 lookup-throughput benchmark once, as a cheap
# regression tripwire for the read-path fast lane.
bench-smoke:
	$(GO) test -run=NONE -bench=E19 -benchtime=1x .

simulate:
	$(GO) run ./cmd/simulate -exp all -quick

# verify is the gate for every change: tier-1 (build + test) plus vet,
# the race detector, and the E19 benchmark smoke.
verify: build vet race test bench-smoke
	@echo "verify: OK"
