GO ?= go

.PHONY: build test vet staticcheck race bench bench-smoke fuzz-smoke simulate verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed (CI installs it; local
# builds without it skip with a note rather than fail — the repo takes
# no dependency on having it present).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs the E19 lookup-throughput, E20 overload, E21
# fault-grid, and E22 partition-safety benchmarks once each, as cheap
# regression tripwires for the read-path fast lane, the admission layer,
# the group-commit write pipeline, and epoch-fenced failover.
bench-smoke:
	$(GO) test -run=NONE -bench='E19|E20|E21|E22' -benchtime=1x .

# fuzz-smoke gives the WAL-tail fuzzer a short budget: fifteen seconds
# of mutated tails (CRC flips, truncations, spliced frames) against the
# recovery prefix property, on top of the deterministic corpus the test
# suite always replays.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz=FuzzWALTail -fuzztime=15s ./internal/storedb

simulate:
	$(GO) run ./cmd/simulate -exp all -quick

# verify is the gate for every change: tier-1 (build + test) plus vet,
# staticcheck, the race detector, the benchmark smoke, and the WAL fuzz
# smoke.
verify: build vet staticcheck race test bench-smoke fuzz-smoke
	@echo "verify: OK"
