GO ?= go

.PHONY: build test vet staticcheck race bench bench-smoke simulate verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# staticcheck runs when the binary is installed (CI installs it; local
# builds without it skip with a note rather than fail — the repo takes
# no dependency on having it present).
staticcheck:
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck: not installed, skipping (go install honnef.co/go/tools/cmd/staticcheck@latest)"; \
	fi

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

# bench-smoke runs the E19 lookup-throughput and E20 overload benchmarks
# once each, as cheap regression tripwires for the read-path fast lane
# and the admission layer.
bench-smoke:
	$(GO) test -run=NONE -bench='E19|E20' -benchtime=1x .

simulate:
	$(GO) run ./cmd/simulate -exp all -quick

# verify is the gate for every change: tier-1 (build + test) plus vet,
# staticcheck, the race detector, and the benchmark smoke.
verify: build vet staticcheck race test bench-smoke
	@echo "verify: OK"
