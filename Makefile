GO ?= go

.PHONY: build test vet race bench simulate verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem .

simulate:
	$(GO) run ./cmd/simulate -exp all -quick

# verify is the gate for every change: tier-1 (build + test) plus vet
# and the race detector.
verify: build vet race test
	@echo "verify: OK"
